//! The asynchronous serving front-end: many connections, a fixed CPU pool.
//!
//! [`AsyncCacheServer`] replaces the blocking submit/wait seam of the old
//! worker pool with the `xpv-net` runtime: every connection (TCP or
//! Unix-domain, see [`AsyncCacheServer::listen_tcp`] /
//! [`AsyncCacheServer::listen_unix`]) is one suspended task on an
//! epoll-driven reactor, so **idle or slow connections hold no worker
//! thread** — the fixed pool of `workers` threads is spent exclusively on
//! batches that are actually executing. The wire protocol, framing, and
//! credit semantics are specified in the `xpv-net` crate docs.
//!
//! ## Backpressure
//!
//! Admission control is **credit-based and per-connection**: the
//! handshake grants each connection a window of `conn_window` in-flight
//! request frames, and the connection's reader task holds a semaphore
//! permit for every admitted frame — once the window is full it simply
//! stops reading, letting the kernel socket buffer (and eventually the
//! client's own send path) absorb the excess. A client can neither flood
//! the admission queue nor starve other connections; it throttles itself,
//! which is exactly the contract the old blocking [`CacheServer::submit`]
//! gave in-process callers.
//!
//! The in-process transport keeps that legacy contract verbatim:
//! [`AsyncCacheServer::submit`] blocks the submitting thread while
//! `max_pending` batches are in flight (counting a
//! [`TenantStats::admission_waits`] when it does) and returns a
//! [`BatchTicket`] resolving to the answers. [`CacheServer`] is a thin
//! wrapper over exactly this path.
//!
//! ## Graceful drain
//!
//! Shutdown ([`AsyncCacheServer::shutdown`], also run on drop) follows
//! the drain sequence: stop admitting (new submissions are **rejected**,
//! not dropped), fire the drain signal (listeners close; connection
//! readers stop at the next frame boundary), let every admitted batch
//! finish and flush its response, send each peer a `ServerBye`, and only
//! then stop the worker pool and reactor. In-flight work is never
//! abandoned: a ticket or connection observes either its answers or an
//! explicit rejection.
//!
//! CPU-bound work (planning + evaluation, and `apply_edits` with its
//! writer gate) runs directly on the worker that polls the task — the
//! pool size bounds simultaneous cache work exactly like the old
//! dedicated worker threads did.

use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use xpv_maintain::Edit;
use xpv_model::AnswerArena;
use xpv_net::proto::{
    AnswersEncoder, Msg, WireDump, WireRouteRef, WireTenantStats, WireUpdateReport, VERSION,
};
use xpv_net::stream::Accepted;
use xpv_net::{
    read_frame, write_frame, AsyncStream, AsyncTcpListener, AsyncUnixListener, DrainSignal,
    FrameEvent, NotifyQueue, Popped, Runtime, Semaphore, WireCounters,
};
use xpv_obs::{
    drain_trace_events, trace_sampling, Health, HealthRule, Heartbeat, History, MetricsSnapshot,
    Phase, Sampler, SamplerConfig, Span, DEFAULT_COOLDOWN_TICKS, DEFAULT_HISTORY_CAPACITY,
    DEFAULT_SAMPLE_INTERVAL,
};
use xpv_pattern::Pattern;

use crate::obs::{wire_alerts, wire_history, wire_metrics, wire_traces};
use crate::shard::{CacheAnswer, Route, ShardedViewCache, UpdateReport};
use crate::tenants::{TenantRegistry, TenantStats};

/// Default bound on in-flight + queued in-process batches (the legacy
/// admission-queue bound).
pub const DEFAULT_MAX_PENDING: usize = 1024;

/// Default per-connection credit window (max unacknowledged frames).
pub const DEFAULT_CONN_WINDOW: u32 = 32;

/// Why a submission was not served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRejected {
    /// Human-readable reason (drain, shutdown).
    pub reason: String,
}

impl std::fmt::Display for BatchRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch rejected: {}", self.reason)
    }
}

impl std::error::Error for BatchRejected {}

/// A pending batch: resolve it with [`BatchTicket::wait`] (panics on
/// rejection, the legacy contract) or [`BatchTicket::wait_result`]
/// (reports rejection, the drain-aware contract).
#[must_use = "a submitted batch is only observable through its ticket"]
pub struct BatchTicket {
    rx: Option<mpsc::Receiver<Vec<CacheAnswer>>>,
    rejected: Option<BatchRejected>,
}

impl BatchTicket {
    fn rejected(reason: &str) -> BatchTicket {
        BatchTicket { rx: None, rejected: Some(BatchRejected { reason: reason.to_string() }) }
    }

    /// Blocks until the batch is answered (answers in input order).
    ///
    /// # Panics
    ///
    /// Panics if the batch was rejected (server draining). Submissions
    /// racing a shutdown should use [`BatchTicket::wait_result`].
    pub fn wait(self) -> Vec<CacheAnswer> {
        self.wait_result().expect("cache server dropped a pending batch")
    }

    /// Blocks until the batch is answered or reports its rejection.
    pub fn wait_result(self) -> Result<Vec<CacheAnswer>, BatchRejected> {
        if let Some(rejected) = self.rejected {
            return Err(rejected);
        }
        self.rx
            .expect("ticket has a channel when not rejected")
            .recv()
            .map_err(|_| BatchRejected { reason: "server dropped the batch".to_string() })
    }
}

/// State shared by the submit path, the listeners, and every connection.
struct ServerShared {
    cache: Arc<ShardedViewCache>,
    tenants: TenantRegistry,
    /// Per-connection credit window granted at handshake.
    conn_window: AtomicU32,
    /// In-process admission bound (the legacy `max_pending`).
    local_window: Semaphore,
    /// Broadcast shutdown signal: listeners and connection readers race
    /// their I/O against it.
    drain: DrainSignal,
    /// Set first during shutdown: new submissions reject immediately.
    draining: AtomicBool,
    /// Live socket connections (diagnostic; the idle-connection tests
    /// assert hundreds of these coexist with a tiny worker pool).
    connections: AtomicUsize,
    /// Wire-level traffic counters, shared by every connection (exposed
    /// as the `xpv_net_*` metric family).
    net: WireCounters,
    /// Writer-loop heartbeat (`xpv_hb_flush_*`): in flight across each
    /// socket write, so a wedged peer that stops reading shows up as a
    /// frozen-beats/inflight>0 stall to the watchdog.
    hb_flush: Heartbeat,
    /// Reader-loop liveness beats (`xpv_hb_reader_*`), one per admitted
    /// frame.
    hb_reader: Heartbeat,
    /// The background history/watchdog thread, when enabled (set once
    /// after the shared state is in its `Arc`; the sampler's snapshot
    /// source holds only a `Weak` back-reference).
    sampler: OnceLock<Arc<Sampler>>,
}

/// Observability configuration for [`AsyncCacheServer::start_with_obs`]:
/// the history sampler interval/capacity and the watchdog rule set.
///
/// The default (what [`AsyncCacheServer::start`] uses) runs the sampler
/// at [`DEFAULT_SAMPLE_INTERVAL`] with [`DEFAULT_HISTORY_CAPACITY`]-point
/// rings and two heartbeat stall rules: `maintain` (wedged
/// `apply_edits`) and `flush` (wedged connection writer). Extra rules —
/// typically [`HealthRule::slo_burn`] over an `xpv_phase_*_us` histogram
/// — append to those defaults.
#[derive(Debug)]
pub struct ObsConfig {
    /// Run the background sampler thread at all (`false` leaves
    /// `HistoryResp` empty and the watchdog dormant).
    pub sampler: bool,
    /// Tick interval for the sampler thread.
    pub interval: Duration,
    /// Per-series ring capacity (points retained per metric).
    pub history_capacity: usize,
    /// Consecutive frozen ticks before a heartbeat stall rule fires.
    pub heartbeat_stall_ticks: u32,
    /// Quiet ticks before forced trace sampling is restored.
    pub cooldown_ticks: u32,
    /// Additional watchdog rules evaluated after the heartbeat defaults.
    pub extra_rules: Vec<HealthRule>,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            sampler: true,
            interval: DEFAULT_SAMPLE_INTERVAL,
            history_capacity: DEFAULT_HISTORY_CAPACITY,
            heartbeat_stall_ticks: 5,
            cooldown_ticks: DEFAULT_COOLDOWN_TICKS,
            extra_rules: Vec::new(),
        }
    }
}

/// An async cache server multiplexing any number of connections (plus the
/// in-process transport) onto a fixed worker pool over one shared
/// [`ShardedViewCache`].
///
/// ```
/// use std::sync::Arc;
/// use xpv_engine::{AsyncCacheServer, ShardedViewCache};
/// use xpv_model::TreeBuilder;
/// use xpv_pattern::parse_xpath;
///
/// let doc = TreeBuilder::root("a", |b| {
///     b.leaf("b");
/// });
/// let cache = ShardedViewCache::new(doc);
/// cache.add_view("bs", parse_xpath("a/b").unwrap());
/// let server = AsyncCacheServer::start(Arc::new(cache), 2);
/// let answers = server.submit("tenant-1", vec![parse_xpath("a/b").unwrap()]).wait();
/// assert_eq!(answers.len(), 1);
/// assert_eq!(server.tenant_stats("tenant-1").unwrap().queries, 1);
/// ```
pub struct AsyncCacheServer {
    shared: Arc<ServerShared>,
    runtime: Arc<Runtime>,
    /// Unix socket paths to unlink if shutdown never runs (the listener
    /// normally removes its own file on drop).
    shut_down: AtomicBool,
}

impl AsyncCacheServer {
    /// Starts `workers` pool threads (minimum 1) over `cache` with the
    /// default in-process admission bound and connection window.
    pub fn start(cache: Arc<ShardedViewCache>, workers: usize) -> AsyncCacheServer {
        Self::start_bounded(cache, workers, DEFAULT_MAX_PENDING)
    }

    /// [`AsyncCacheServer::start`] with an explicit in-process admission
    /// bound (minimum 1): [`AsyncCacheServer::submit`] blocks once
    /// `max_pending` batches are in flight.
    pub fn start_bounded(
        cache: Arc<ShardedViewCache>,
        workers: usize,
        max_pending: usize,
    ) -> AsyncCacheServer {
        Self::start_with_obs(cache, workers, max_pending, ObsConfig::default())
    }

    /// [`AsyncCacheServer::start_bounded`] with explicit observability
    /// configuration: sampler interval/capacity and the watchdog rule
    /// set (see [`ObsConfig`]).
    pub fn start_with_obs(
        cache: Arc<ShardedViewCache>,
        workers: usize,
        max_pending: usize,
        obs: ObsConfig,
    ) -> AsyncCacheServer {
        let runtime = Runtime::new(workers).expect("start async runtime");
        let registry = Arc::clone(cache.obs_registry());
        let shared = Arc::new(ServerShared {
            hb_flush: Heartbeat::new(&registry, "flush"),
            hb_reader: Heartbeat::new(&registry, "reader"),
            cache,
            tenants: TenantRegistry::new(),
            conn_window: AtomicU32::new(DEFAULT_CONN_WINDOW),
            local_window: Semaphore::new(max_pending.max(1)),
            drain: DrainSignal::new(),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            net: WireCounters::new(),
            sampler: OnceLock::new(),
        });
        if obs.sampler {
            let mut rules = vec![
                HealthRule::heartbeat_stall("maintain", obs.heartbeat_stall_ticks),
                HealthRule::heartbeat_stall("flush", obs.heartbeat_stall_ticks),
            ];
            rules.extend(obs.extra_rules);
            // The snapshot source holds a Weak so the sampler cannot keep
            // the server state alive; after shutdown drops the Arc the
            // closure degrades to an empty snapshot (the thread is joined
            // before that in the normal path anyway).
            let weak: Weak<ServerShared> = Arc::downgrade(&shared);
            let sampler = Sampler::start(
                registry,
                move || match weak.upgrade() {
                    Some(shared) => server_metrics_snapshot(&shared),
                    None => MetricsSnapshot::new(),
                },
                SamplerConfig {
                    interval: obs.interval,
                    capacity: obs.history_capacity,
                    rules,
                    cooldown_ticks: obs.cooldown_ticks,
                },
            );
            let _ = shared.sampler.set(Arc::new(sampler));
        }
        AsyncCacheServer { shared, runtime: Arc::new(runtime), shut_down: AtomicBool::new(false) }
    }

    /// Sets the credit window granted to connections accepted **after**
    /// this call (minimum 1).
    pub fn set_conn_window(&self, window: u32) {
        self.shared.conn_window.store(window.max(1), Ordering::Relaxed);
    }

    /// The credit window new connections are granted.
    pub fn conn_window(&self) -> u32 {
        self.shared.conn_window.load(Ordering::Relaxed)
    }

    /// The shared cache the pool answers from.
    pub fn cache(&self) -> &Arc<ShardedViewCache> {
        &self.shared.cache
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.runtime.workers()
    }

    /// Live socket connections right now.
    pub fn connections(&self) -> usize {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Starts accepting wire-protocol connections on a TCP address
    /// (e.g. `"127.0.0.1:0"`). Returns the bound address.
    pub fn listen_tcp(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = AsyncTcpListener::bind(addr, self.runtime.reactor())?;
        let local = listener.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let runtime = Arc::clone(&self.runtime);
        let accepted = self.runtime.spawn(async move {
            let drain = shared.drain.listener();
            loop {
                match listener.accept(&drain).await {
                    Ok(Accepted::Stream(stream)) => spawn_connection(&shared, &runtime, stream),
                    Ok(Accepted::Drained) => return,
                    Err(_) => continue,
                }
            }
        });
        if !accepted {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "server is shutting down"));
        }
        Ok(local)
    }

    /// Starts accepting wire-protocol connections on a Unix-domain socket
    /// at `path` (created now, removed when the listener drains).
    pub fn listen_unix(&self, path: &Path) -> io::Result<PathBuf> {
        let listener = AsyncUnixListener::bind(path, self.runtime.reactor())?;
        let shared = Arc::clone(&self.shared);
        let runtime = Arc::clone(&self.runtime);
        let accepted = self.runtime.spawn(async move {
            let drain = shared.drain.listener();
            loop {
                match listener.accept(&drain).await {
                    Ok(Accepted::Stream(stream)) => spawn_connection(&shared, &runtime, stream),
                    Ok(Accepted::Drained) => return,
                    Err(_) => continue,
                }
            }
        });
        if !accepted {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "server is shutting down"));
        }
        Ok(path.to_path_buf())
    }

    /// Admits a query batch for `tenant` over the **in-process
    /// transport**, blocking while `max_pending` batches are in flight
    /// (accounted as [`TenantStats::admission_waits`] when it happens).
    /// Returns a ticket resolving to the answers (input order) — or to a
    /// rejection if the server is draining.
    pub fn submit(&self, tenant: &str, queries: impl Into<Vec<Pattern>>) -> BatchTicket {
        let queries: Vec<Pattern> = queries.into();
        if self.shared.draining.load(Ordering::Acquire) {
            return BatchTicket::rejected("server is draining");
        }
        if self.shared.local_window.acquire_blocking() {
            self.shared.tenants.counters(tenant).admission_waits.fetch_add(1, Ordering::Relaxed);
        }
        let (tx, rx) = mpsc::channel();
        let shared = Arc::clone(&self.shared);
        let tenant = tenant.to_string();
        let spawned = self.runtime.spawn(async move {
            let answers = shared.cache.answer_batch(&queries);
            shared.tenants.account_batch(&tenant, &answers);
            // A dropped ticket (caller gave up) is fine; the work is done.
            let _ = tx.send(answers);
            shared.local_window.release();
        });
        if !spawned {
            self.shared.local_window.release();
            return BatchTicket::rejected("server is shutting down");
        }
        BatchTicket { rx: Some(rx), rejected: None }
    }

    /// Submits and waits: synchronous batch answering with
    /// [`ShardedViewCache::answer_batch`] semantics.
    pub fn answer_batch(&self, tenant: &str, queries: impl Into<Vec<Pattern>>) -> Vec<CacheAnswer> {
        self.submit(tenant, queries).wait()
    }

    /// Applies a document edit batch through the shared cache on behalf
    /// of `tenant` (see [`ShardedViewCache::apply_edits`]); the edit is
    /// accounted to the tenant's [`TenantStats`].
    pub fn apply_edits(
        &self,
        tenant: &str,
        edits: &[Edit],
    ) -> Result<UpdateReport, xpv_maintain::EditError> {
        let report = self.shared.cache.apply_edits(edits)?;
        account_update(&self.shared, tenant, &report);
        Ok(report)
    }

    /// This tenant's lifetime counters (`None` before its first batch).
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.shared.tenants.get(tenant)
    }

    /// All tenants with their counters, sorted by tenant id.
    pub fn tenants(&self) -> Vec<(String, TenantStats)> {
        self.shared.tenants.all()
    }

    /// The whole server's metrics as one sorted snapshot: everything in
    /// [`ShardedViewCache::metrics_snapshot`] plus the per-tenant
    /// counters (`xpv_tenant_*{tenant="id"}`), the wire-traffic counters
    /// (`xpv_net_*`), and the server gauges (`xpv_server_connections`,
    /// `xpv_server_conn_window`). This is exactly the payload of a
    /// `StatsV2Resp` frame — `xpv stats` prints its text form.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        server_metrics_snapshot(&self.shared)
    }

    /// The background history/watchdog sampler (`None` when started with
    /// `ObsConfig { sampler: false, .. }`).
    pub fn sampler(&self) -> Option<&Arc<Sampler>> {
        self.shared.sampler.get()
    }

    /// The sampler's recorded time-series history, when enabled.
    pub fn history(&self) -> Option<&Arc<History>> {
        self.sampler().map(|s| s.history())
    }

    /// The watchdog state (rules, alerts, trace forcing), when enabled.
    pub fn health(&self) -> Option<&Arc<Health>> {
        self.sampler().map(|s| s.health())
    }

    /// Graceful drain (idempotent; also run on drop): reject new
    /// submissions, stop the sampler thread, close listeners, finish and
    /// flush every admitted batch, send connected peers a `ServerBye`,
    /// then stop the pool.
    pub fn shutdown(&self) {
        if self.shut_down.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(sampler) = self.shared.sampler.get() {
            sampler.stop();
        }
        self.shared.draining.store(true, Ordering::Release);
        self.shared.drain.set();
        self.runtime.wait_idle();
        self.runtime.shutdown();
    }
}

impl Drop for AsyncCacheServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the full-server snapshot (see
/// [`AsyncCacheServer::metrics_snapshot`]); also the `StatsV2Req`
/// handler's body.
fn server_metrics_snapshot(shared: &ServerShared) -> MetricsSnapshot {
    let mut snap = shared.cache.metrics_snapshot();
    for (tenant, stats) in shared.tenants.all() {
        stats.visit(&mut |name, v| {
            snap.push_counter_labeled(format!("xpv_tenant_{name}"), ("tenant", &tenant), v);
        });
    }
    shared.net.snapshot().visit(&mut |name, v| {
        snap.push_counter(format!("xpv_net_{name}"), v);
    });
    snap.push_gauge("xpv_server_connections", shared.connections.load(Ordering::Relaxed) as u64);
    snap.push_gauge("xpv_server_conn_window", shared.conn_window.load(Ordering::Relaxed) as u64);
    snap.sort();
    snap
}

/// Builds a `HistoryResp` from the sampler's retained series
/// (`interval_us == 0` and no series when the sampler is off).
fn history_resp(shared: &ServerShared, id: u64) -> Msg {
    match shared.sampler.get() {
        Some(sampler) => Msg::HistoryResp {
            id,
            interval_us: sampler.interval().as_micros() as u64,
            series: wire_history(sampler.history()),
        },
        None => Msg::HistoryResp { id, interval_us: 0, series: Vec::new() },
    }
}

/// Builds the flight-recorder artifact: live metrics, the history
/// window, watchdog alert states, the drained trace rings, and the
/// server's knob/config state. **Drains the trace rings** — events
/// captured here are gone from the next `xpv trace`-style drain.
fn build_dump(shared: &ServerShared) -> WireDump {
    let mut dump = WireDump {
        metrics: wire_metrics(&server_metrics_snapshot(shared)),
        traces: wire_traces(&drain_trace_events()),
        ..WireDump::default()
    };
    let mut config: Vec<(String, String)> = vec![
        ("trace_sampling".to_string(), trace_sampling().to_string()),
        ("conn_window".to_string(), shared.conn_window.load(Ordering::Relaxed).to_string()),
        ("connections".to_string(), shared.connections.load(Ordering::Relaxed).to_string()),
        ("draining".to_string(), shared.draining.load(Ordering::Acquire).to_string()),
    ];
    if let Some(sampler) = shared.sampler.get() {
        dump.interval_us = sampler.interval().as_micros() as u64;
        dump.series = wire_history(sampler.history());
        dump.alerts = wire_alerts(&sampler.health().alerts());
        config.push(("sampler_interval_us".to_string(), dump.interval_us.to_string()));
        config.push(("history_capacity".to_string(), sampler.history().capacity().to_string()));
        config.push(("history_ticks".to_string(), sampler.history().ticks().to_string()));
        config.push(("trace_forced".to_string(), sampler.health().trace_forced().to_string()));
    }
    dump.config = config;
    dump
}

fn account_update(shared: &ServerShared, tenant: &str, report: &UpdateReport) {
    let counters = shared.tenants.counters(tenant);
    counters.updates_applied.fetch_add(report.edits_applied as u64, Ordering::Relaxed);
    counters
        .views_refreshed_incrementally
        .fetch_add(report.views_refreshed as u64, Ordering::Relaxed);
}

/// One response frame awaiting the writer task: the encoded body plus
/// the request's lifecycle span (disabled for control frames). The
/// writer marks the span's `flush` phase after the socket write, then
/// drops it — which is what records the finished trace event.
struct Outgoing {
    body: Vec<u8>,
    span: Span,
}

/// One accepted connection's shared state.
struct Conn {
    stream: Arc<AsyncStream>,
    /// Encoded response frames awaiting the writer task.
    out: NotifyQueue<Outgoing>,
    /// In-flight credit window: the reader holds one permit per admitted
    /// frame; handlers return it after enqueuing their response.
    window: Semaphore,
    window_size: u32,
}

impl Conn {
    /// Enqueues a control frame (no request span to carry).
    fn push_control(&self, body: Vec<u8>) {
        self.out.push(Outgoing { body, span: Span::disabled() });
    }
}

fn spawn_connection(shared: &Arc<ServerShared>, runtime: &Arc<Runtime>, stream: AsyncStream) {
    let shared_for_task = Arc::clone(shared);
    let runtime_for_conn = Arc::clone(runtime);
    // The connection count is owned by the spawned task (incremented on
    // entry, decremented on exit), so a spawn rejected by a racing
    // shutdown — which drops the future unrun — cannot leak a count.
    let _ = runtime.spawn(async move {
        shared_for_task.connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(&shared_for_task, &runtime_for_conn, stream).await;
        shared_for_task.connections.fetch_sub(1, Ordering::Relaxed);
    });
}

/// The connection reader: handshake, then one admitted frame per credit.
async fn serve_connection(shared: &Arc<ServerShared>, runtime: &Arc<Runtime>, stream: AsyncStream) {
    let drain = shared.drain.listener();
    // --- Handshake -------------------------------------------------------
    let body = match read_frame(&stream, &drain).await {
        Ok(FrameEvent::Frame(body)) => body,
        _ => return,
    };
    shared.net.frame_in(body.len());
    match Msg::decode(&body) {
        Ok(Msg::Hello { version }) if version == VERSION => {}
        Ok(Msg::Hello { version }) => {
            let msg = Msg::Error {
                message: format!(
                    "unsupported protocol version {version} (server speaks {VERSION})"
                ),
            };
            let _ = write_frame(&stream, &msg.encode()).await;
            return;
        }
        Ok(_) | Err(_) => {
            let msg = Msg::Error { message: "expected Hello".to_string() };
            let _ = write_frame(&stream, &msg.encode()).await;
            return;
        }
    }
    let window_size = shared.conn_window.load(Ordering::Relaxed).max(1);
    let ack = Msg::HelloAck { version: VERSION, window: window_size }.encode();
    if write_frame(&stream, &ack).await.is_err() {
        return;
    }
    shared.net.frame_out(ack.len());

    let conn = Arc::new(Conn {
        stream: Arc::new(stream),
        out: NotifyQueue::new(),
        window: Semaphore::new(window_size as usize),
        window_size,
    });

    // --- Writer task: flushes the outbox until it closes -----------------
    {
        let conn = Arc::clone(&conn);
        let shared = Arc::clone(shared);
        runtime.spawn(async move {
            loop {
                match conn.out.pop().await {
                    Popped::Item(mut outgoing) => {
                        // Heartbeat in flight across the write: a peer
                        // that stops reading wedges us here, and the
                        // watchdog's `flush_stall` rule sees frozen beats
                        // with inflight > 0.
                        let _hb = shared.hb_flush.begin();
                        let started = Instant::now();
                        if write_frame(&conn.stream, &outgoing.body).await.is_err() {
                            // Peer gone: drain silently so handlers'
                            // pushes don't pile up.
                            continue;
                        }
                        let wrote = started.elapsed();
                        shared.net.frame_out(outgoing.body.len());
                        shared.cache.obs.flush_us.record_duration(wrote);
                        if outgoing.span.is_enabled() {
                            outgoing.span.mark_us(Phase::Flush, wrote.as_micros() as u64);
                        }
                        // Dropping the span here records the request's
                        // trace event with its full timeline.
                    }
                    Popped::Closed => return,
                }
            }
        });
    }

    // --- Read loop: one frame per credit ---------------------------------
    loop {
        // Credit gate: in-flight handlers always finish, so this acquire
        // always returns; a full window merely stops the socket read —
        // kernel-buffer backpressure onto the client. A stalled read
        // (window exhausted) is the per-connection backpressure signal.
        if !conn.window.try_acquire() {
            shared.net.credit_stalls.fetch_add(1, Ordering::Relaxed);
            conn.window.acquire().await;
        }
        let event = read_frame(&conn.stream, &drain).await;
        let body = match event {
            Ok(FrameEvent::Frame(body)) => body,
            Ok(FrameEvent::Eof) | Ok(FrameEvent::Drained) | Err(_) => {
                conn.window.release();
                break;
            }
        };
        shared.net.frame_in(body.len());
        shared.hb_reader.beat_now();
        match Msg::decode(&body) {
            Ok(Msg::QueryBatch { id, tenant, queries }) => {
                let shared = Arc::clone(shared);
                let conn_for_task = Arc::clone(&conn);
                // The request's lifecycle span opens at decode; the time
                // until the handler runs is its admission wait.
                let mut span = Span::begin("net.query");
                let admitted = Instant::now();
                let spawned = runtime.spawn(async move {
                    let waited = admitted.elapsed();
                    shared.cache.obs.admission_us.record_duration(waited);
                    if span.is_enabled() {
                        span.mark_us(Phase::Admission, waited.as_micros() as u64);
                    }
                    // Stream the Answers frame straight into its byte
                    // buffer from the engine's own node slices — no
                    // WireAnswer clones on the hot response path. On the
                    // arena lane (the default) the node runs live in one
                    // per-batch bump arena and the encoder reads them as
                    // borrowed slices; `--no-arena` falls back to the
                    // owned-`Vec` API (identical bytes, one `Vec` per
                    // answer).
                    let body = if shared.cache.arena_enabled() {
                        let mut arena = AnswerArena::new();
                        let answers =
                            shared.cache.answer_batch_refs_spanned(&queries, &mut span, &mut arena);
                        shared.tenants.account_batch_refs(&tenant, &answers);
                        let encode_started = Instant::now();
                        let mut enc = AnswersEncoder::new(id);
                        for a in &answers {
                            enc.answer(wire_route_ref(&a.route), arena.get(a.nodes));
                        }
                        let body = enc.finish();
                        let encoded = encode_started.elapsed();
                        shared.cache.obs.encode_us.record_duration(encoded);
                        if span.is_enabled() {
                            span.mark_us(Phase::Encode, encoded.as_micros() as u64);
                        }
                        body
                    } else {
                        let answers = shared.cache.answer_batch_spanned(&queries, &mut span);
                        shared.tenants.account_batch(&tenant, &answers);
                        let encode_started = Instant::now();
                        let mut enc = AnswersEncoder::new(id);
                        for a in &answers {
                            enc.answer(wire_route_ref(&a.route), &a.nodes);
                        }
                        let body = enc.finish();
                        let encoded = encode_started.elapsed();
                        shared.cache.obs.encode_us.record_duration(encoded);
                        if span.is_enabled() {
                            span.mark_us(Phase::Encode, encoded.as_micros() as u64);
                        }
                        body
                    };
                    push_body(&shared, &conn_for_task, id, body, span);
                    conn_for_task.window.release();
                });
                if !spawned {
                    reject(&conn, id, "server is shutting down");
                }
            }
            Ok(Msg::EditBatch { id, tenant, edits }) => {
                let shared = Arc::clone(shared);
                let conn_for_task = Arc::clone(&conn);
                let spawned = runtime.spawn(async move {
                    let msg = match shared.cache.apply_edits(&edits) {
                        Ok(report) => {
                            account_update(&shared, &tenant, &report);
                            Msg::EditAck { id, report: wire_report(&report) }
                        }
                        Err(e) => Msg::Rejected { id, reason: e.to_string() },
                    };
                    push_body(&shared, &conn_for_task, id, msg.encode(), Span::disabled());
                    conn_for_task.window.release();
                });
                if !spawned {
                    reject(&conn, id, "server is shutting down");
                }
            }
            Ok(Msg::StatsReq { id, tenant }) => {
                let stats = shared.tenants.get(&tenant);
                let msg = Msg::StatsResp {
                    id,
                    found: stats.is_some(),
                    stats: wire_tenant_stats(stats.unwrap_or_default()),
                };
                conn.push_control(msg.encode());
                conn.window.release();
            }
            Ok(Msg::StatsV2Req { id }) => {
                let snap = server_metrics_snapshot(shared);
                let msg = Msg::StatsV2Resp { id, metrics: wire_metrics(&snap) };
                push_body(shared, &conn, id, msg.encode(), Span::disabled());
                conn.window.release();
            }
            Ok(Msg::HistoryReq { id }) => {
                let msg = history_resp(shared, id);
                push_body(shared, &conn, id, msg.encode(), Span::disabled());
                conn.window.release();
            }
            Ok(Msg::DebugDumpReq { id }) => {
                let msg = Msg::DebugDumpResp { id, dump: build_dump(shared) };
                push_body(shared, &conn, id, msg.encode(), Span::disabled());
                conn.window.release();
            }
            Ok(Msg::Goodbye) => {
                conn.window.release();
                break;
            }
            Ok(other) => {
                conn.push_control(
                    Msg::Error { message: format!("unexpected frame {other:?}") }.encode(),
                );
                conn.window.release();
                break;
            }
            Err(e) => {
                conn.push_control(Msg::Error { message: e.to_string() }.encode());
                conn.window.release();
                break;
            }
        }
    }

    // --- Drain this connection ------------------------------------------
    // Reclaim the whole window: every in-flight handler has then pushed
    // its response. Handlers always terminate, so this cannot hang.
    for _ in 0..conn.window_size {
        conn.window.acquire().await;
    }
    conn.push_control(Msg::ServerBye.encode());
    conn.out.close();
}

fn reject(conn: &Conn, id: u64, reason: &str) {
    conn.push_control(Msg::Rejected { id, reason: reason.to_string() }.encode());
    conn.window.release();
}

/// Enqueues a response body with its request span, downgrading one whose
/// encoding exceeds the frame cap to a `Rejected` — the connection (and
/// its pipelined siblings) survive, and the client sees an explicit
/// refusal instead of the protocol error an oversized frame would
/// trigger. The downgrade is counted as an oversized rejection.
fn push_body(shared: &ServerShared, conn: &Conn, id: u64, body: Vec<u8>, span: Span) {
    if body.len() <= xpv_net::MAX_FRAME {
        conn.out.push(Outgoing { body, span });
    } else {
        shared.net.oversized_rejections.fetch_add(1, Ordering::Relaxed);
        let reason = format!(
            "response of {} bytes exceeds the {}-byte frame limit; narrow the batch",
            body.len(),
            xpv_net::MAX_FRAME
        );
        conn.out.push(Outgoing { body: Msg::Rejected { id, reason }.encode(), span });
    }
}

/// The engine route's borrowed wire form (no string clones).
fn wire_route_ref(route: &Route) -> WireRouteRef<'_> {
    match route {
        Route::Direct => WireRouteRef::Direct,
        Route::ViaView { view, rewriting } => WireRouteRef::ViaView { view, rewriting },
        Route::Intersect { views, compensation } => WireRouteRef::Intersect { views, compensation },
    }
}

fn wire_report(r: &UpdateReport) -> WireUpdateReport {
    WireUpdateReport {
        edits_applied: r.edits_applied as u64,
        doc_version: r.doc_version,
        views_refreshed: r.views_refreshed as u64,
        views_changed: r.views_changed as u64,
        routes_dropped: r.routes_dropped,
    }
}

fn wire_tenant_stats(s: TenantStats) -> WireTenantStats {
    WireTenantStats {
        batches: s.batches,
        queries: s.queries,
        view_hits: s.view_hits,
        intersect_hits: s.intersect_hits,
        direct: s.direct,
        updates_applied: s.updates_applied,
        views_refreshed_incrementally: s.views_refreshed_incrementally,
        admission_waits: s.admission_waits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::{Tree, TreeBuilder};
    use xpv_net::WireClient;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    fn server(workers: usize) -> AsyncCacheServer {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        AsyncCacheServer::start(Arc::new(cache), workers)
    }

    #[test]
    fn in_process_submit_answers_match_direct() {
        let server = server(2);
        let qs = vec![pat("site/region/item/name"), pat("site/region"), pat("site//name")];
        let answers = server.answer_batch("t1", qs.clone());
        assert_eq!(answers.len(), 3);
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, server.cache().answer_direct(q), "order broken for {q}");
        }
    }

    #[test]
    fn submissions_after_shutdown_are_rejected_not_hung() {
        let server = server(1);
        let q = pat("site/region/item");
        assert!(server.submit("t", vec![q.clone()]).wait_result().is_ok());
        server.shutdown();
        let err = server.submit("t", vec![q]).wait_result().expect_err("draining rejects");
        assert!(err.reason.contains("draining"), "got: {}", err.reason);
    }

    #[test]
    fn admission_waits_are_counted_when_the_window_is_full() {
        let server = AsyncCacheServer::start_bounded(
            Arc::new(ShardedViewCache::new(doc())),
            1,
            1, // window of one: the second submit must wait
        );
        let q = pat("site/region/item/name");
        let tickets: Vec<BatchTicket> =
            (0..6).map(|_| server.submit("waiter", vec![q.clone()])).collect();
        for t in tickets {
            assert!(t.wait_result().is_ok());
        }
        let stats = server.tenant_stats("waiter").expect("accounted");
        assert_eq!(stats.batches, 6);
        assert!(stats.admission_waits > 0, "window of 1 with 6 submits must wait: {stats:?}");
    }

    #[test]
    fn wire_round_trip_over_tcp() {
        let server = server(2);
        let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
        let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
        assert_eq!(client.window(), DEFAULT_CONN_WINDOW);
        let qs = vec![pat("site/region/item/name"), pat("site/region/item")];
        let answers = client.answer_batch("wire-tenant", &qs).expect("answers");
        assert_eq!(answers.len(), 2);
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, server.cache().answer_direct(q), "wire answers differ for {q}");
        }
        let stats = client.tenant_stats("wire-tenant").expect("io").expect("tenant seen");
        assert_eq!(stats.queries, 2);
        assert!(client.tenant_stats("never-seen").expect("io").is_none());
        let drained = client.goodbye().expect("clean close");
        assert!(drained.is_empty());
        assert_eq!(server.tenant_stats("wire-tenant").unwrap().queries, 2);
    }

    #[test]
    fn wire_round_trip_over_unix_socket() {
        let server = server(2);
        let path = std::env::temp_dir().join(format!("xpv-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        server.listen_unix(&path).expect("listen");
        let mut client = WireClient::connect_unix(&path).expect("connect");
        let q = pat("site//name");
        let answers = client.answer_batch("ux", std::slice::from_ref(&q)).expect("answers");
        assert_eq!(answers[0].nodes, server.cache().answer_direct(&q));
        drop(client);
        server.shutdown();
        assert!(!path.exists(), "drained listener removes its socket file");
    }

    #[test]
    fn version_mismatch_is_refused() {
        use std::io::{Read, Write};
        let server = server(1);
        let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        let body = Msg::Hello { version: 999 }.encode();
        raw.write_all(&(body.len() as u32).to_le_bytes()).expect("len");
        raw.write_all(&body).expect("body");
        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("error frame length");
        let mut resp = vec![0u8; u32::from_le_bytes(len) as usize];
        raw.read_exact(&mut resp).expect("error frame body");
        match Msg::decode(&resp).expect("decodes") {
            Msg::Error { message } => {
                assert!(message.contains("version"), "got: {message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // The server closes after the error frame.
        assert_eq!(raw.read(&mut len).expect("eof"), 0);
    }

    /// A long-interval sampler: never ticks on its own during the test,
    /// so `tick_now` is the only recording path (deterministic).
    fn obs_server() -> AsyncCacheServer {
        let cache = ShardedViewCache::new(doc()).with_shards(4);
        cache.add_view("items", pat("site/region/item"));
        AsyncCacheServer::start_with_obs(
            Arc::new(cache),
            2,
            DEFAULT_MAX_PENDING,
            ObsConfig { interval: Duration::from_secs(3600), ..ObsConfig::default() },
        )
    }

    #[test]
    fn history_frames_serve_the_sampler_rings() {
        let server = obs_server();
        server.answer_batch("t", vec![pat("site/region/item")]);
        let sampler = server.sampler().expect("sampler on by default");
        sampler.tick_now();
        server.answer_batch("t", vec![pat("site/region/item")]);
        sampler.tick_now();

        let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
        let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
        let (interval_us, series) = client.history().expect("history frame");
        assert_eq!(interval_us, 3_600_000_000, "configured interval travels");
        let queries = series
            .iter()
            .find(|s| s.name == "xpv_cache_queries")
            .expect("query counter series present");
        assert_eq!(queries.kind, xpv_net::METRIC_COUNTER);
        assert_eq!(queries.points.len(), 2, "one point per tick");
        assert_eq!(queries.points[1].values, vec![1], "second tick's delta is one batch");
        assert!(
            series.iter().any(|s| s.name == "xpv_hb_maintain_beats"),
            "heartbeat gauges are part of the history"
        );
    }

    #[test]
    fn debug_dump_bundles_metrics_history_alerts_and_config() {
        let server = obs_server();
        server.answer_batch("t", vec![pat("site/region/item/name")]);
        server.sampler().expect("sampler").tick_now();

        let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
        let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
        let dump = client.debug_dump().expect("dump frame");
        assert!(!dump.metrics.is_empty(), "live snapshot travels");
        assert!(!dump.series.is_empty(), "history window travels");
        let alert_names: Vec<&str> = dump.alerts.iter().map(|a| a.name.as_str()).collect();
        assert!(alert_names.contains(&"maintain_stall"), "got: {alert_names:?}");
        assert!(alert_names.contains(&"flush_stall"), "got: {alert_names:?}");
        assert!(dump.alerts.iter().all(|a| !a.firing), "healthy server fires nothing");
        let key = |k: &str| {
            dump.config
                .iter()
                .find(|(name, _)| name == k)
                .unwrap_or_else(|| panic!("config key {k} missing: {:?}", dump.config))
                .1
                .clone()
        };
        assert_eq!(key("trace_sampling"), xpv_obs::DEFAULT_TRACE_SAMPLING.to_string());
        assert_eq!(key("sampler_interval_us"), "3600000000");
        assert_eq!(key("history_capacity"), DEFAULT_HISTORY_CAPACITY.to_string());
    }

    #[test]
    fn disabled_sampler_serves_an_empty_history() {
        let cache = ShardedViewCache::new(doc());
        let server = AsyncCacheServer::start_with_obs(
            Arc::new(cache),
            1,
            DEFAULT_MAX_PENDING,
            ObsConfig { sampler: false, ..ObsConfig::default() },
        );
        assert!(server.sampler().is_none());
        assert!(server.history().is_none());
        let addr = server.listen_tcp("127.0.0.1:0").expect("listen");
        let mut client = WireClient::connect_tcp(&addr.to_string()).expect("connect");
        let (interval_us, series) = client.history().expect("history frame");
        assert_eq!((interval_us, series.len()), (0, 0), "0 interval marks no sampler");
        let dump = client.debug_dump().expect("dump frame");
        assert!(!dump.metrics.is_empty(), "metrics still travel without a sampler");
        assert!(dump.series.is_empty());
        assert!(dump.alerts.is_empty());
    }
}
