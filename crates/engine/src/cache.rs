//! A rewriting-based view cache: the application the paper motivates.
//!
//! The introduction of the paper criticizes caching systems (\[3, 5, 13, 18\])
//! for using *incomplete* algorithms when answering queries from cached
//! XPath views. [`ViewCache`] is the complete counterpart: for each incoming
//! query it consults the [`xpv_core::RewritePlanner`]; whenever an
//! *equivalent* rewriting over some cached view exists, the answer is
//! computed from the view (virtually — no subtree copies). When no single
//! view suffices, the **intersection planner** (`xpv-intersect`) looks for
//! a small view subset whose node-set intersection serves the query jointly
//! ([`Route::Intersect`]); only then does the query run directly against
//! the document. Soundness is inherited from the planner: a rewriting is
//! only used after `R ◦ V ≡ P` (or `R ◦ M ≡ P` over the intersection
//! pattern `M`) has been verified.
//!
//! Since the serving path was sharded, `ViewCache` is a **thin
//! single-threaded wrapper over one shard** of the concurrent
//! [`ShardedViewCache`](crate::ShardedViewCache): identical planning, plan
//! memo, statistics, and answers, with the familiar `&mut self` API and no
//! locking overhead beyond one uncontended shard. Use `ShardedViewCache`
//! (or the [`CacheServer`](crate::CacheServer) worker pool) when multiple
//! threads must answer concurrently.
//!
//! ## Amortization under repeated traffic
//!
//! The cache plans through one long-lived [`xpv_core::PlanningSession`], so
//! containment verdicts and homomorphism witnesses are shared across *all*
//! queries, and keeps a **plan memo** keyed by interned query keys
//! ([`xpv_pattern::PatternKey`]): the second arrival of a query (or of any
//! sibling-reordered isomorph) skips planning entirely — zero
//! canonical-model containment calls, observable via
//! [`CacheStats::plan_memo_hits`] and the flat
//! [`CacheStats::oracle_canonical_runs`] counter. Registering a new view
//! invalidates only the plan-memo entries whose plan depends on the grown
//! pool (`Direct` routes; see the [`shard`](crate::shard) module docs),
//! while the oracle's containment verdicts — which depend only on the
//! pattern pair — survive.
//!
//! [`ViewCache::answer_batch`] answers a workload slice in one pass over
//! this machinery, planning duplicated queries once and fanning the answer
//! out; [`ViewCache::set_memo_enabled`] is the ablation knob that turns all
//! memo levels off for before/after measurements.

use std::sync::Arc;

use xpv_core::RewritePlanner;
use xpv_intersect::IntersectConfig;
use xpv_maintain::{Edit, EditError};
use xpv_model::{AnswerArena, NodeId, Tree};
use xpv_pattern::Pattern;

pub use crate::shard::{CacheAnswer, CacheAnswerRef, CacheStats, ChoicePolicy, Route};
use crate::shard::{ShardedViewCache, UpdateReport};
use crate::view::MaterializedView;

/// A set of materialized views over a single document, with rewriting-based
/// query answering, a long-lived planning session, and a per-query plan
/// memo (see the module docs for the amortization story).
#[derive(Debug)]
pub struct ViewCache {
    inner: ShardedViewCache,
    /// Mirror of the inner view pool so [`ViewCache::views`] can hand out a
    /// plain slice (the concurrent pool lives behind a lock).
    views_mirror: Arc<Vec<MaterializedView>>,
    /// Mirror of the inner document so [`ViewCache::document`] can hand out
    /// a plain reference (refreshed after every `apply_edits`).
    doc_mirror: Arc<Tree>,
}

impl ViewCache {
    /// Creates an empty cache over `doc` with the default planner.
    pub fn new(doc: Tree) -> ViewCache {
        Self::with_planner(doc, RewritePlanner::default())
    }

    /// Creates an empty cache with a custom planner configuration.
    pub fn with_planner(doc: Tree, planner: RewritePlanner) -> ViewCache {
        let inner = ShardedViewCache::with_planner(doc, planner).with_shards(1);
        let views_mirror = inner.views_snapshot();
        let doc_mirror = inner.document();
        ViewCache { inner, views_mirror, doc_mirror }
    }

    /// Sets the view-selection policy (builder style). Invalidates the plan
    /// memo: routes chosen under the previous policy are stale.
    pub fn with_policy(mut self, policy: ChoicePolicy) -> ViewCache {
        self.inner.set_policy(policy);
        self
    }

    /// Sets the intersection-planner budget (builder style).
    pub fn with_intersect_config(mut self, cfg: IntersectConfig) -> ViewCache {
        self.inner = self.inner.with_intersect_config(cfg);
        self
    }

    /// Enables or disables multi-view **intersection routes** (the
    /// `--no-intersect` ablation knob); see
    /// [`ShardedViewCache::set_intersect_enabled`] for the memo effects.
    pub fn set_intersect_enabled(&mut self, enabled: bool) {
        self.inner.set_intersect_enabled(enabled);
    }

    /// Whether intersection routes are planned.
    pub fn intersect_enabled(&self) -> bool {
        self.inner.intersect_enabled()
    }

    /// Enables or disables the plan-miss **signature fast path** (the
    /// `--no-sig-filter` ablation knob); see
    /// [`ShardedViewCache::set_sig_filter_enabled`] — routes and answers
    /// are identical either way.
    pub fn set_sig_filter_enabled(&mut self, enabled: bool) {
        self.inner.set_sig_filter_enabled(enabled);
    }

    /// Whether plan misses pre-filter candidates by signature.
    pub fn sig_filter_enabled(&self) -> bool {
        self.inner.sig_filter_enabled()
    }

    /// Enables or disables **all** memoization — the plan memo and the
    /// session oracle's verdict/homomorphism memos. This is the ablation
    /// knob the throughput bench flips to measure what sharing buys;
    /// disabling clears every memo so a re-enable starts cold.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        self.inner.set_memo_enabled(enabled);
    }

    /// Whether memoization is active.
    pub fn memo_enabled(&self) -> bool {
        self.inner.memo_enabled()
    }

    /// The cached document (current state; refreshed by
    /// [`ViewCache::apply_edits`]).
    pub fn document(&self) -> &Tree {
        &self.doc_mirror
    }

    /// Applies a transactional batch of document edits, incrementally
    /// refreshing every registered view and invalidating only the plan-memo
    /// routes whose participants' answers actually changed — see
    /// [`ShardedViewCache::apply_edits`]. On error the cache is unchanged.
    pub fn apply_edits(&mut self, edits: &[Edit]) -> Result<UpdateReport, EditError> {
        let report = self.inner.apply_edits(edits)?;
        self.views_mirror = self.inner.views_snapshot();
        self.doc_mirror = self.inner.document();
        Ok(report)
    }

    /// The number of successful [`ViewCache::apply_edits`] batches so far.
    pub fn doc_version(&self) -> u64 {
        self.inner.doc_version()
    }

    /// Enables or disables incremental maintenance under
    /// [`ViewCache::apply_edits`] (disabled = full re-materialization, the
    /// update-bench baseline).
    pub fn set_incremental_maintenance(&mut self, enabled: bool) {
        self.inner.set_incremental_maintenance(enabled);
    }

    /// Whether `apply_edits` maintains views incrementally.
    pub fn incremental_maintenance(&self) -> bool {
        self.inner.incremental_maintenance()
    }

    /// Enables or disables batch coalescing under incremental maintenance
    /// (disabled = the legacy per-edit path, the `--no-coalesce` ablation).
    pub fn set_coalesce_enabled(&mut self, enabled: bool) {
        self.inner.set_coalesce_enabled(enabled);
    }

    /// Whether incremental maintenance coalesces edit batches.
    pub fn coalesce_enabled(&self) -> bool {
        self.inner.coalesce_enabled()
    }

    /// Enables or disables the parallel region fan-out
    /// (the `--no-parallel-regions` ablation).
    pub fn set_parallel_regions(&mut self, enabled: bool) {
        self.inner.set_parallel_regions(enabled);
    }

    /// Whether region scans fan out across worker threads.
    pub fn parallel_regions(&self) -> bool {
        self.inner.parallel_regions()
    }

    /// Sets the region fan-out worker count (`0` = auto).
    pub fn set_region_workers(&mut self, workers: usize) {
        self.inner.set_region_workers(workers);
    }

    /// The concurrent cache this wrapper drives (one shard). Useful for
    /// promoting a configured single-threaded cache to shared serving.
    pub fn into_sharded(self) -> ShardedViewCache {
        self.inner
    }

    /// Materializes `def` over the document and registers it under `name`.
    /// Returns the number of answers materialized.
    ///
    /// Invalidates only the plan-memo entries whose plan depends on the
    /// grown view pool (a new view may serve queries that previously routed
    /// `Direct`; memoized view routes survive). The oracle's containment
    /// verdicts are unaffected (they depend only on the pattern pair).
    ///
    /// # Panics
    ///
    /// Panics if a view with the same name is already registered.
    pub fn add_view(&mut self, name: &str, def: Pattern) -> usize {
        let n = self.inner.add_view(name, def);
        self.views_mirror = self.inner.views_snapshot();
        n
    }

    /// Deregisters the view named `name` (returns `false` when absent).
    /// `Direct` routes survive; routes whose participants are touched by
    /// the removal are selectively invalidated (see
    /// [`ShardedViewCache::remove_view`]).
    pub fn remove_view(&mut self, name: &str) -> bool {
        let removed = self.inner.remove_view(name);
        if removed {
            self.views_mirror = self.inner.views_snapshot();
        }
        removed
    }

    /// Replaces the view named `name` with a fresh materialization of
    /// `def`, invalidating every memoized route that depended on the old
    /// view (single-view *and* intersection routes). Returns the number of
    /// answers materialized.
    ///
    /// # Panics
    ///
    /// Panics if no view named `name` is registered.
    pub fn replace_view(&mut self, name: &str, def: Pattern) -> usize {
        let n = self.inner.replace_view(name, def);
        self.views_mirror = self.inner.views_snapshot();
        n
    }

    /// The registered views.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views_mirror
    }

    /// Lifetime statistics (the oracle counters are folded in live).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Answers `query`, preferring an equivalent rewriting over any
    /// registered view and falling back to direct evaluation. Which view
    /// wins when several apply is governed by the [`ChoicePolicy`].
    ///
    /// From its second occurrence on, a query's route is served from the
    /// plan memo: no planner call and **zero** canonical-model containment
    /// calls ([`CacheStats::plan_memo_hits`] counts these).
    pub fn answer(&mut self, query: &Pattern) -> CacheAnswer {
        self.inner.answer(query)
    }

    /// Answers a whole workload slice in one pass. Queries repeated within
    /// the batch (and sibling-reordered isomorphs) are planned **and
    /// evaluated** once — repeat positions receive a fan-out clone of the
    /// first occurrence's answer; answers come back in input order.
    pub fn answer_batch(&mut self, queries: &[Pattern]) -> Vec<CacheAnswer> {
        self.inner.answer_batch(queries)
    }

    /// [`ViewCache::answer_batch`] through the zero-allocation arena lane:
    /// node runs land in the caller's [`AnswerArena`] (cleared first) and
    /// each answer carries an 8-byte handle instead of an owned `Vec` (see
    /// [`ShardedViewCache::answer_batch_refs`]).
    pub fn answer_batch_refs(
        &mut self,
        queries: &[Pattern],
        arena: &mut AnswerArena,
    ) -> Vec<CacheAnswerRef> {
        self.inner.answer_batch_refs(queries, arena)
    }

    /// Answers `query` by direct evaluation only (baseline for benchmarks).
    pub fn answer_direct(&self, query: &Pattern) -> Vec<NodeId> {
        self.inner.answer_direct(query)
    }

    /// A **partial** answer from the views when no equivalent rewriting
    /// exists: uses a *contained* rewriting (`R ∘ V ⊑ P`, the sound half of
    /// the paper's open problem 3), so every returned node is a genuine
    /// answer of `query`, but some answers may be missing. Returns `None`
    /// when no view yields even a contained rewriting.
    ///
    /// The `complete` flag is `true` only when the rewriting is equivalent
    /// (in which case this behaves like [`ViewCache::answer`]).
    pub fn answer_partial(&mut self, query: &Pattern) -> Option<(Vec<NodeId>, bool)> {
        self.inner.answer_partial(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                        b.child("desc", |b| {
                            b.leaf("keyword");
                        });
                    });
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    #[test]
    fn view_hit_produces_correct_answer() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let direct = cache.answer_direct(&q);
        let ans = cache.answer(&q);
        assert_eq!(ans.nodes, direct);
        match ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "items"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(cache.stats().view_hits, 1);
    }

    #[test]
    fn miss_falls_back_to_direct() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("names", pat("site/region/item/name"));
        // Query output lies above the view output: no rewriting can exist.
        let q = pat("site/region/item[name]");
        let ans = cache.answer(&q);
        assert_eq!(ans.route, Route::Direct);
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert_eq!(cache.stats().direct, 1);
    }

    #[test]
    fn first_usable_view_wins() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("regions", pat("site/region"));
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item[desc/keyword]/name");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "regions"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
    }

    #[test]
    fn multiple_queries_accumulate_stats() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q1 = pat("site/region/item/name");
        let q2 = pat("site//keyword");
        let _ = cache.answer(&q1);
        let _ = cache.answer(&q2);
        let s = cache.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.view_hits + s.direct, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate view name")]
    fn duplicate_view_names_rejected() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("v", pat("site/region"));
        cache.add_view("v", pat("site/region/item"));
    }

    #[test]
    fn smallest_view_policy_prefers_selective_views() {
        let mut cache = ViewCache::new(doc()).with_policy(ChoicePolicy::SmallestView);
        // Both views admit a rewriting for the query; `items` is smaller
        // than `regions`' subtree count? regions = 3, items = 6 — regions is
        // the smaller view by answer count.
        cache.add_view("regions", pat("site/region"));
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "regions"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
    }

    #[test]
    fn partial_answers_are_sound_subsets() {
        let mut cache = ViewCache::new(doc());
        // The view only covers items with a desc branch — queries over all
        // items cannot be answered equivalently.
        cache.add_view("desc_items", pat("site/region/item[desc]"));
        let q = pat("site/region/item/name");
        assert_eq!(cache.answer(&q).route, Route::Direct);
        let (partial, complete) = cache.answer_partial(&q).expect("contained rewriting exists");
        assert!(!complete);
        let full = cache.answer_direct(&q);
        assert!(partial.iter().all(|n| full.contains(n)));
        assert!(partial.len() < full.len(), "view genuinely covers a subset");
        assert!(!partial.is_empty());
    }

    #[test]
    fn partial_answer_reports_complete_when_equivalent() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let (nodes, complete) = cache.answer_partial(&q).expect("equivalent exists");
        assert!(complete);
        assert_eq!(nodes, cache.answer_direct(&q));
    }

    #[test]
    fn repeated_queries_hit_the_plan_memo_with_zero_conp_work() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");

        let first = cache.answer(&q);
        let after_first = cache.stats();
        assert_eq!(after_first.plan_memo_hits, 0);
        assert_eq!(after_first.plan_memo_misses, 1);

        let second = cache.answer(&q);
        let after_second = cache.stats();
        assert_eq!(after_second.plan_memo_hits, 1, "second occurrence must memo-hit");
        assert_eq!(
            after_second.oracle_canonical_runs, after_first.oracle_canonical_runs,
            "repeat answer must perform zero canonical-model containment calls"
        );
        assert_eq!(after_second.oracle_models_checked, after_first.oracle_models_checked);
        assert_eq!(first.nodes, second.nodes);
        assert_eq!(first.route, second.route);

        // A sibling-reordered isomorph of a seen query also memo-hits.
        let mut cache2 = ViewCache::new(doc());
        cache2.add_view("items", pat("site/region/item"));
        let _ = cache2.answer(&pat("site/region[item]/item[name][desc]/name"));
        let runs = cache2.stats().oracle_canonical_runs;
        let _ = cache2.answer(&pat("site/region[item]/item[desc][name]/name"));
        assert_eq!(cache2.stats().plan_memo_hits, 1);
        assert_eq!(cache2.stats().oracle_canonical_runs, runs);
    }

    #[test]
    fn memo_disabled_replans_every_time() {
        let mut cache = ViewCache::new(doc());
        cache.set_memo_enabled(false);
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let _ = cache.answer(&q);
        let runs_first = cache.stats().oracle_canonical_runs;
        let _ = cache.answer(&q);
        let s = cache.stats();
        assert_eq!(s.plan_memo_hits, 0);
        assert_eq!(s.plan_memo_misses, 2);
        assert!(
            s.oracle_canonical_runs >= runs_first,
            "no-memo cache repeats its containment work"
        );
    }

    #[test]
    fn add_view_invalidates_plan_memo() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("names", pat("site/region/item/name"));
        // No usable view: route memoized as Direct.
        let q = pat("site/region/item");
        assert_eq!(cache.answer(&q).route, Route::Direct);
        // The new view must be picked up despite the memoized Direct route.
        cache.add_view("items", pat("site/region/item"));
        match cache.answer(&q).route {
            Route::ViaView { view, .. } => assert_eq!(view, "items"),
            other => panic!("expected the fresh view to serve, got {other:?}"),
        }
    }

    #[test]
    fn policy_change_invalidates_memoized_routes() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("regions", pat("site/region"));
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        // FirstMatch memoizes the "regions" route.
        match cache.answer(&q).route {
            Route::ViaView { view, .. } => assert_eq!(view, "regions"),
            other => panic!("expected view hit, got {other:?}"),
        }
        // Switching policy must not serve the stale FirstMatch route.
        let mut cache = cache.with_policy(ChoicePolicy::SmallestView);
        match cache.answer(&q).route {
            Route::ViaView { view, .. } => {
                assert_eq!(view, "regions", "regions is the smaller view here");
            }
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(cache.stats().plan_memo_misses, 2, "route re-planned after policy change");
    }

    #[test]
    fn partial_answers_keep_stats_consistent() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("desc_items", pat("site/region/item[desc]"));
        let q = pat("site/region/item/name");
        let _ = cache.answer_partial(&q);
        let s = cache.stats();
        assert_eq!(s.queries, 1);
        assert_eq!(s.plan_memo_hits + s.plan_memo_misses, s.queries);
        assert_eq!(s.view_hits, 0, "contained rewriting is not an equivalent view hit");
    }

    #[test]
    fn batch_answers_match_singles_and_amortize() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let qs = vec![
            pat("site/region/item/name"),
            pat("site//keyword"),
            pat("site/region/item/name"),
            pat("site/region/item/name"),
            pat("site//keyword"),
        ];
        let answers = cache.answer_batch(&qs);
        assert_eq!(answers.len(), qs.len());
        for (q, a) in qs.iter().zip(&answers) {
            assert_eq!(a.nodes, cache.answer_direct(q), "batch answer wrong for {q}");
        }
        let s = cache.stats();
        assert_eq!(s.queries, 5);
        assert_eq!(s.plan_memo_misses, 2, "two distinct queries planned once each");
        assert_eq!(s.plan_memo_hits, 3);
        assert_eq!(s.batch_dedup_hits, 3, "all three repeats fanned out without a lookup");
    }

    #[test]
    fn deep_descendant_query_via_descendant_view() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("all_items", pat("site//item"));
        let q = pat("site//item/desc/keyword");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, rewriting } => {
                assert_eq!(view, "all_items");
                assert_eq!(rewriting, "item/desc/keyword");
            }
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert_eq!(ans.nodes.len(), 3);
    }

    #[test]
    fn views_accessor_mirrors_registrations() {
        let mut cache = ViewCache::new(doc());
        assert!(cache.views().is_empty());
        cache.add_view("items", pat("site/region/item"));
        cache.add_view("names", pat("site/region/item/name"));
        let names: Vec<&str> = cache.views().iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["items", "names"]);
        // Removal and replacement keep the mirror in sync.
        assert!(cache.remove_view("items"));
        assert!(!cache.remove_view("items"));
        cache.replace_view("names", pat("site//name"));
        let names: Vec<&str> = cache.views().iter().map(|v| v.name()).collect();
        assert_eq!(names, vec!["names"]);
    }

    #[test]
    fn intersection_route_through_the_single_threaded_wrapper() {
        // Items carry incomparable optional branches (bids / shipping), so
        // neither view subsumes the other and only their intersection
        // serves the joint query.
        let t = TreeBuilder::root("site", |b| {
            b.child("region", |b| {
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("shipping");
                });
                b.child("item", |b| {
                    b.leaf("name");
                    b.leaf("bids");
                    b.leaf("shipping");
                });
            });
        });
        let mut cache = ViewCache::new(t);
        cache.add_view("bid_names", pat("site/region/item[bids]/name"));
        cache.add_view("ship_names", pat("site/region/item[shipping]/name"));
        let q = pat("site/region/item[bids][shipping]/name");
        let ans = cache.answer(&q);
        assert!(
            matches!(ans.route, Route::Intersect { .. }),
            "expected an intersection route, got {:?}",
            ans.route
        );
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert!(cache.intersect_enabled());
        assert_eq!(cache.stats().intersect_hits, 1);
        // The ablation knob flows through the wrapper.
        cache.set_intersect_enabled(false);
        assert_eq!(cache.answer(&q).route, Route::Direct);
    }
}
