//! A rewriting-based view cache: the application the paper motivates.
//!
//! The introduction of the paper criticizes caching systems (\[3, 5, 13, 18\])
//! for using *incomplete* algorithms when answering queries from cached
//! XPath views. [`ViewCache`] is the complete counterpart: for each incoming
//! query it consults the [`xpv_core::RewritePlanner`]; whenever an
//! *equivalent* rewriting over some cached view exists, the answer is
//! computed from the view (virtually — no subtree copies), and otherwise the
//! query runs directly against the document. Soundness is inherited from the
//! planner: a rewriting is only used after `R ◦ V ≡ P` has been verified.

use std::time::{Duration, Instant};

use xpv_core::{contained_rewriting, RewriteAnswer, RewritePlanner};
use xpv_model::{NodeId, Tree};
use xpv_pattern::Pattern;
use xpv_semantics::evaluate;

use crate::view::MaterializedView;

/// How the cache picks among several usable views.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChoicePolicy {
    /// The first registered view that admits a rewriting (lowest planning
    /// cost: planning stops at the first hit).
    #[default]
    FirstMatch,
    /// Among all views admitting a rewriting, the one with the smallest
    /// materialized result (lowest evaluation cost; plans against every
    /// view).
    SmallestView,
}

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// Answered from the named view through the given rewriting.
    ViaView {
        /// Name of the view used.
        view: String,
        /// The rewriting `R` that was applied to the view result.
        rewriting: String,
    },
    /// Answered by evaluating the query directly on the document.
    Direct,
}

/// A cache answer: the output nodes plus provenance.
#[derive(Clone, Debug)]
pub struct CacheAnswer {
    /// Output nodes in the cached document.
    pub nodes: Vec<NodeId>,
    /// How the answer was produced.
    pub route: Route,
    /// Time spent deciding rewritability (planning only).
    pub planning: Duration,
    /// Time spent evaluating (view-based or direct).
    pub evaluation: Duration,
}

/// Aggregate statistics over the cache's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Queries answered.
    pub queries: u64,
    /// Queries answered from a view.
    pub view_hits: u64,
    /// Queries answered directly.
    pub direct: u64,
}

/// A set of materialized views over a single document, with rewriting-based
/// query answering.
#[derive(Debug)]
pub struct ViewCache {
    doc: Tree,
    views: Vec<MaterializedView>,
    planner: RewritePlanner,
    policy: ChoicePolicy,
    stats: CacheStats,
}

impl ViewCache {
    /// Creates an empty cache over `doc` with the default planner.
    pub fn new(doc: Tree) -> ViewCache {
        Self::with_planner(doc, RewritePlanner::default())
    }

    /// Creates an empty cache with a custom planner configuration.
    pub fn with_planner(doc: Tree, planner: RewritePlanner) -> ViewCache {
        ViewCache {
            doc,
            views: Vec::new(),
            planner,
            policy: ChoicePolicy::default(),
            stats: CacheStats::default(),
        }
    }

    /// Sets the view-selection policy (builder style).
    pub fn with_policy(mut self, policy: ChoicePolicy) -> ViewCache {
        self.policy = policy;
        self
    }

    /// The cached document.
    pub fn document(&self) -> &Tree {
        &self.doc
    }

    /// Materializes `def` over the document and registers it under `name`.
    /// Returns the number of answers materialized.
    ///
    /// # Panics
    ///
    /// Panics if a view with the same name is already registered.
    pub fn add_view(&mut self, name: &str, def: Pattern) -> usize {
        assert!(
            self.views.iter().all(|v| v.name() != name),
            "duplicate view name {name:?}"
        );
        let view = MaterializedView::materialize(name, def, &self.doc);
        let n = view.len();
        self.views.push(view);
        n
    }

    /// The registered views.
    pub fn views(&self) -> &[MaterializedView] {
        &self.views
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Answers `query`, preferring an equivalent rewriting over any
    /// registered view and falling back to direct evaluation. Which view
    /// wins when several apply is governed by the [`ChoicePolicy`].
    pub fn answer(&mut self, query: &Pattern) -> CacheAnswer {
        self.stats.queries += 1;
        let plan_start = Instant::now();
        let mut chosen: Option<(usize, Pattern)> = None;
        for (i, view) in self.views.iter().enumerate() {
            if let RewriteAnswer::Rewriting(rw) = self.planner.decide(query, view.definition()) {
                let better = match (&chosen, self.policy) {
                    (None, _) => true,
                    (Some(_), ChoicePolicy::FirstMatch) => false,
                    (Some((j, _)), ChoicePolicy::SmallestView) => {
                        view.len() < self.views[*j].len()
                    }
                };
                if better {
                    chosen = Some((i, rw.pattern().clone()));
                }
                if self.policy == ChoicePolicy::FirstMatch {
                    break;
                }
            }
        }
        let planning = plan_start.elapsed();

        let eval_start = Instant::now();
        let (nodes, route) = match chosen {
            Some((i, r)) => {
                self.stats.view_hits += 1;
                let view = &self.views[i];
                let nodes = view.apply_virtual(&r, &self.doc);
                (
                    nodes,
                    Route::ViaView { view: view.name().to_string(), rewriting: r.to_string() },
                )
            }
            None => {
                self.stats.direct += 1;
                (evaluate(query, &self.doc), Route::Direct)
            }
        };
        let evaluation = eval_start.elapsed();
        CacheAnswer { nodes, route, planning, evaluation }
    }

    /// Answers `query` by direct evaluation only (baseline for benchmarks).
    pub fn answer_direct(&self, query: &Pattern) -> Vec<NodeId> {
        evaluate(query, &self.doc)
    }

    /// A **partial** answer from the views when no equivalent rewriting
    /// exists: uses a *contained* rewriting (`R ∘ V ⊑ P`, the sound half of
    /// the paper's open problem 3), so every returned node is a genuine
    /// answer of `query`, but some answers may be missing. Returns `None`
    /// when no view yields even a contained rewriting.
    ///
    /// The `complete` flag is `true` only when the rewriting is equivalent
    /// (in which case this behaves like [`ViewCache::answer`]).
    pub fn answer_partial(&mut self, query: &Pattern) -> Option<(Vec<NodeId>, bool)> {
        // Equivalent rewriting first.
        for view in &self.views {
            if let RewriteAnswer::Rewriting(rw) = self.planner.decide(query, view.definition()) {
                return Some((view.apply_virtual(rw.pattern(), &self.doc), true));
            }
        }
        // Contained rewriting: pick the view yielding the most answers.
        let mut best: Option<Vec<NodeId>> = None;
        for view in &self.views {
            if let Some(r) = contained_rewriting(query, view.definition()) {
                let nodes = view.apply_virtual(&r, &self.doc);
                if best.as_ref().is_none_or(|b| nodes.len() > b.len()) {
                    best = Some(nodes);
                }
            }
        }
        best.map(|nodes| (nodes, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("site", |b| {
            for _ in 0..3 {
                b.child("region", |b| {
                    b.child("item", |b| {
                        b.leaf("name");
                        b.child("desc", |b| {
                            b.leaf("keyword");
                        });
                    });
                    b.child("item", |b| {
                        b.leaf("name");
                    });
                });
            }
        })
    }

    #[test]
    fn view_hit_produces_correct_answer() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let direct = cache.answer_direct(&q);
        let ans = cache.answer(&q);
        assert_eq!(ans.nodes, direct);
        match ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "items"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(cache.stats().view_hits, 1);
    }

    #[test]
    fn miss_falls_back_to_direct() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("names", pat("site/region/item/name"));
        // Query output lies above the view output: no rewriting can exist.
        let q = pat("site/region/item[name]");
        let ans = cache.answer(&q);
        assert_eq!(ans.route, Route::Direct);
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert_eq!(cache.stats().direct, 1);
    }

    #[test]
    fn first_usable_view_wins() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("regions", pat("site/region"));
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item[desc/keyword]/name");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "regions"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
    }

    #[test]
    fn multiple_queries_accumulate_stats() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q1 = pat("site/region/item/name");
        let q2 = pat("site//keyword");
        let _ = cache.answer(&q1);
        let _ = cache.answer(&q2);
        let s = cache.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.view_hits + s.direct, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate view name")]
    fn duplicate_view_names_rejected() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("v", pat("site/region"));
        cache.add_view("v", pat("site/region/item"));
    }

    #[test]
    fn smallest_view_policy_prefers_selective_views() {
        let mut cache = ViewCache::new(doc()).with_policy(ChoicePolicy::SmallestView);
        // Both views admit a rewriting for the query; `items` is smaller
        // than `regions`' subtree count? regions = 3, items = 6 — regions is
        // the smaller view by answer count.
        cache.add_view("regions", pat("site/region"));
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, .. } => assert_eq!(view, "regions"),
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
    }

    #[test]
    fn partial_answers_are_sound_subsets() {
        let mut cache = ViewCache::new(doc());
        // The view only covers items with a desc branch — queries over all
        // items cannot be answered equivalently.
        cache.add_view("desc_items", pat("site/region/item[desc]"));
        let q = pat("site/region/item/name");
        assert_eq!(cache.answer(&q).route, Route::Direct);
        let (partial, complete) = cache.answer_partial(&q).expect("contained rewriting exists");
        assert!(!complete);
        let full = cache.answer_direct(&q);
        assert!(partial.iter().all(|n| full.contains(n)));
        assert!(partial.len() < full.len(), "view genuinely covers a subset");
        assert!(!partial.is_empty());
    }

    #[test]
    fn partial_answer_reports_complete_when_equivalent() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("items", pat("site/region/item"));
        let q = pat("site/region/item/name");
        let (nodes, complete) = cache.answer_partial(&q).expect("equivalent exists");
        assert!(complete);
        assert_eq!(nodes, cache.answer_direct(&q));
    }

    #[test]
    fn deep_descendant_query_via_descendant_view() {
        let mut cache = ViewCache::new(doc());
        cache.add_view("all_items", pat("site//item"));
        let q = pat("site//item/desc/keyword");
        let ans = cache.answer(&q);
        match &ans.route {
            Route::ViaView { view, rewriting } => {
                assert_eq!(view, "all_items");
                assert_eq!(rewriting, "item/desc/keyword");
            }
            other => panic!("expected view hit, got {other:?}"),
        }
        assert_eq!(ans.nodes, cache.answer_direct(&q));
        assert_eq!(ans.nodes.len(), 3);
    }
}
