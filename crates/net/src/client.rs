//! A blocking protocol client over `std` sockets.
//!
//! The client side of the wire protocol needs no reactor: a load
//! generator (or CLI) drives one connection per thread, pipelining up to
//! the server-granted credit window and blocking on the reply stream. The
//! client tracks its credits and transparently waits for a response
//! (buffering it for a later [`WireClient::recv`]) when a send would
//! overdraw the window — so a caller can simply pump batches and the
//! connection self-throttles to the server's advertised window.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use xpv_maintain::Edit;
use xpv_pattern::Pattern;

use crate::frame::MAX_FRAME;
use crate::proto::{
    Msg, WireAnswer, WireDump, WireMetric, WireSeries, WireTenantStats, WireUpdateReport, VERSION,
};

/// One response frame, correlated to its request by `id`.
#[derive(Clone, Debug)]
pub enum Response {
    /// Answers for query batch `id` (input order).
    Answers { id: u64, answers: Vec<WireAnswer> },
    /// Edit batch `id` was applied.
    EditAck { id: u64, report: WireUpdateReport },
    /// Tenant counters for stats request `id`.
    Stats { id: u64, found: bool, stats: WireTenantStats },
    /// Whole-server metrics snapshot for stats-v2 request `id`.
    Metrics { id: u64, metrics: Vec<WireMetric> },
    /// Server-side metric history for history request `id`.
    History { id: u64, interval_us: u64, series: Vec<WireSeries> },
    /// Flight-recorder artifact for dump request `id`.
    Dump { id: u64, dump: Box<WireDump> },
    /// Request `id` was not served (e.g. the server is draining, or the
    /// edit batch failed validation).
    Rejected { id: u64, reason: String },
}

impl Response {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Answers { id, .. }
            | Response::EditAck { id, .. }
            | Response::Stats { id, .. }
            | Response::Metrics { id, .. }
            | Response::History { id, .. }
            | Response::Dump { id, .. }
            | Response::Rejected { id, .. } => *id,
        }
    }
}

trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// A blocking client connection speaking the xpv wire protocol.
pub struct WireClient {
    reader: BufReader<Box<dyn Transport>>,
    writer: BufWriter<Box<dyn Transport>>,
    window: u32,
    credits: u32,
    next_id: u64,
    /// Responses read while waiting for a credit or a specific id.
    buffered: VecDeque<Response>,
}

impl WireClient {
    /// Connects over TCP and performs the version handshake.
    pub fn connect_tcp(addr: &str) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Self::handshake(Box::new(reader), Box::new(stream))
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    pub fn connect_unix(path: &Path) -> io::Result<WireClient> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Self::handshake(Box::new(reader), Box::new(stream))
    }

    fn handshake(reader: Box<dyn Transport>, writer: Box<dyn Transport>) -> io::Result<WireClient> {
        let mut client = WireClient {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
            window: 0,
            credits: 0,
            next_id: 1,
            buffered: VecDeque::new(),
        };
        client.send(&Msg::Hello { version: VERSION })?;
        match client.read_msg()? {
            Msg::HelloAck { version, window } => {
                if version != VERSION {
                    return Err(protocol_err(format!(
                        "server speaks protocol v{version}, client v{VERSION}"
                    )));
                }
                client.window = window;
                client.credits = window;
                Ok(client)
            }
            Msg::Error { message } => Err(protocol_err(format!("handshake refused: {message}"))),
            other => Err(protocol_err(format!("expected HelloAck, got {other:?}"))),
        }
    }

    /// The credit window the server granted at handshake.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Credits currently available (window minus in-flight requests).
    pub fn credits(&self) -> u32 {
        self.credits
    }

    fn send(&mut self, msg: &Msg) -> io::Result<()> {
        let body = msg.encode();
        debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
        self.writer.write_all(&(body.len() as u32).to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.writer.flush()
    }

    fn read_msg(&mut self) -> io::Result<Msg> {
        let mut len_buf = [0u8; 4];
        self.reader.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(protocol_err(format!("frame length {len} outside 1..={MAX_FRAME}")));
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Msg::decode(&body).map_err(|e| protocol_err(e.to_string()))
    }

    /// Spends one credit, first waiting for (and buffering) a response if
    /// the window is exhausted.
    fn take_credit(&mut self) -> io::Result<()> {
        if self.credits == 0 {
            let response = self.read_response()?;
            self.buffered.push_back(response);
        }
        self.credits -= 1;
        Ok(())
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let response = match self.read_msg()? {
            Msg::Answers { id, answers } => Response::Answers { id, answers },
            Msg::EditAck { id, report } => Response::EditAck { id, report },
            Msg::StatsResp { id, found, stats } => Response::Stats { id, found, stats },
            Msg::StatsV2Resp { id, metrics } => Response::Metrics { id, metrics },
            Msg::HistoryResp { id, interval_us, series } => {
                Response::History { id, interval_us, series }
            }
            Msg::DebugDumpResp { id, dump } => Response::Dump { id, dump: Box::new(dump) },
            Msg::Rejected { id, reason } => Response::Rejected { id, reason },
            Msg::ServerBye => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "server said goodbye with requests still in flight",
                ))
            }
            Msg::Error { message } => return Err(protocol_err(message)),
            other => return Err(protocol_err(format!("unexpected frame {other:?}"))),
        };
        self.credits += 1;
        Ok(response)
    }

    /// Sends a query batch (pipelined), returning its request id. Blocks
    /// only when the credit window is exhausted.
    pub fn send_queries(&mut self, tenant: &str, queries: &[Pattern]) -> io::Result<u64> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::QueryBatch { id, tenant: tenant.to_string(), queries: queries.to_vec() })?;
        Ok(id)
    }

    /// Sends an edit batch (pipelined), returning its request id.
    pub fn send_edits(&mut self, tenant: &str, edits: &[Edit]) -> io::Result<u64> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::EditBatch { id, tenant: tenant.to_string(), edits: edits.to_vec() })?;
        Ok(id)
    }

    /// Receives the next response (buffered ones first).
    pub fn recv(&mut self) -> io::Result<Response> {
        if let Some(buffered) = self.buffered.pop_front() {
            return Ok(buffered);
        }
        self.read_response()
    }

    /// Receives until the response for `id` arrives, buffering others.
    pub fn recv_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(pos) = self.buffered.iter().position(|r| r.id() == id) {
            return Ok(self.buffered.remove(pos).expect("position just found"));
        }
        loop {
            let response = self.read_response()?;
            if response.id() == id {
                return Ok(response);
            }
            self.buffered.push_back(response);
        }
    }

    /// Synchronous batch answering: send one batch, wait for its answers.
    pub fn answer_batch(
        &mut self,
        tenant: &str,
        queries: &[Pattern],
    ) -> io::Result<Vec<WireAnswer>> {
        let id = self.send_queries(tenant, queries)?;
        match self.recv_for(id)? {
            Response::Answers { answers, .. } => Ok(answers),
            Response::Rejected { reason, .. } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            other => Err(protocol_err(format!("expected Answers, got {other:?}"))),
        }
    }

    /// Synchronous edit application: send one edit batch, wait for the ack.
    /// The outer error is transport-level; the inner `Err(reason)` means
    /// the server rejected the batch (validation failure, drain).
    pub fn apply_edits(
        &mut self,
        tenant: &str,
        edits: &[Edit],
    ) -> io::Result<Result<WireUpdateReport, String>> {
        let id = self.send_edits(tenant, edits)?;
        match self.recv_for(id)? {
            Response::EditAck { report, .. } => Ok(Ok(report)),
            Response::Rejected { reason, .. } => Ok(Err(reason)),
            other => Err(protocol_err(format!("expected EditAck, got {other:?}"))),
        }
    }

    /// Fetches `tenant`'s counters from the server (`None` when the server
    /// has never seen the tenant).
    pub fn tenant_stats(&mut self, tenant: &str) -> io::Result<Option<WireTenantStats>> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::StatsReq { id, tenant: tenant.to_string() })?;
        match self.recv_for(id)? {
            Response::Stats { found, stats, .. } => Ok(found.then_some(stats)),
            Response::Rejected { reason, .. } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            other => Err(protocol_err(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Fetches the server's full metrics snapshot (every metric family,
    /// sorted by name then labels) — the wire face of `xpv stats`.
    pub fn metrics(&mut self) -> io::Result<Vec<WireMetric>> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::StatsV2Req { id })?;
        match self.recv_for(id)? {
            Response::Metrics { metrics, .. } => Ok(metrics),
            Response::Rejected { reason, .. } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            other => Err(protocol_err(format!("expected Metrics, got {other:?}"))),
        }
    }

    /// Fetches the server's retained metric history: the sampler tick
    /// interval in microseconds (0 = no sampler running) and every
    /// series' ring, points oldest first — what `xpv top` renders.
    pub fn history(&mut self) -> io::Result<(u64, Vec<WireSeries>)> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::HistoryReq { id })?;
        match self.recv_for(id)? {
            Response::History { interval_us, series, .. } => Ok((interval_us, series)),
            Response::Rejected { reason, .. } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            other => Err(protocol_err(format!("expected History, got {other:?}"))),
        }
    }

    /// Fetches a flight-recorder dump: metrics, history window, alerts,
    /// drained trace spans, and config state in one artifact. Draining is
    /// destructive server-side — the server's buffered spans move into
    /// this dump.
    pub fn debug_dump(&mut self) -> io::Result<WireDump> {
        self.take_credit()?;
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Msg::DebugDumpReq { id })?;
        match self.recv_for(id)? {
            Response::Dump { dump, .. } => Ok(*dump),
            Response::Rejected { reason, .. } => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, reason))
            }
            other => Err(protocol_err(format!("expected Dump, got {other:?}"))),
        }
    }

    /// Clean close: announce goodbye, drain every in-flight response, and
    /// wait for the server's bye. Returns the drained responses.
    pub fn goodbye(mut self) -> io::Result<Vec<Response>> {
        self.send(&Msg::Goodbye)?;
        let mut drained: Vec<Response> = self.buffered.drain(..).collect();
        loop {
            match self.read_msg()? {
                Msg::Answers { id, answers } => drained.push(Response::Answers { id, answers }),
                Msg::EditAck { id, report } => drained.push(Response::EditAck { id, report }),
                Msg::StatsResp { id, found, stats } => {
                    drained.push(Response::Stats { id, found, stats })
                }
                Msg::StatsV2Resp { id, metrics } => drained.push(Response::Metrics { id, metrics }),
                Msg::HistoryResp { id, interval_us, series } => {
                    drained.push(Response::History { id, interval_us, series })
                }
                Msg::DebugDumpResp { id, dump } => {
                    drained.push(Response::Dump { id, dump: Box::new(dump) })
                }
                Msg::Rejected { id, reason } => drained.push(Response::Rejected { id, reason }),
                Msg::ServerBye => return Ok(drained),
                Msg::Error { message } => return Err(protocol_err(message)),
                other => return Err(protocol_err(format!("unexpected frame {other:?}"))),
            }
        }
    }
}

fn protocol_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}
