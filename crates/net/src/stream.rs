//! Nonblocking TCP / Unix-domain streams and listeners driven by the
//! [`Reactor`](crate::reactor::Reactor).
//!
//! [`AsyncStream`] wraps a nonblocking `std` socket registered with the
//! reactor. All I/O methods take `&self` — `&TcpStream` / `&UnixStream`
//! implement `Read`/`Write`, and the reactor caches per-direction
//! readiness separately — so one connection can run a reader task and a
//! writer task concurrently over a shared `Arc<AsyncStream>` without any
//! extra locking.
//!
//! Reads are **drain-aware**: every read future also parks itself on the
//! server's [`DrainSignal`](crate::sync::DrainSignal), so a graceful
//! shutdown preempts a connection that is sitting idle in `read` without
//! closing its socket from under it.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::task::{Context, Poll};

use crate::reactor::{Interest, Reactor, Source};
use crate::sync::DrainListener;

/// How a drain-aware read resolved.
pub enum ReadEvent {
    /// `n > 0` bytes were read into the buffer.
    Data(usize),
    /// The peer closed its write half (clean EOF).
    Eof,
    /// The server's drain signal fired before any bytes arrived.
    Drained,
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// A nonblocking socket registered with a reactor.
pub struct AsyncStream {
    kind: StreamKind,
    source: Arc<Source>,
    reactor: Arc<Reactor>,
}

impl AsyncStream {
    /// Registers an accepted/connected TCP stream.
    pub fn from_tcp(stream: TcpStream, reactor: &Arc<Reactor>) -> io::Result<AsyncStream> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let source = reactor.register(stream.as_raw_fd())?;
        Ok(AsyncStream { kind: StreamKind::Tcp(stream), source, reactor: Arc::clone(reactor) })
    }

    /// Registers an accepted/connected Unix-domain stream.
    pub fn from_unix(stream: UnixStream, reactor: &Arc<Reactor>) -> io::Result<AsyncStream> {
        stream.set_nonblocking(true)?;
        let source = reactor.register(stream.as_raw_fd())?;
        Ok(AsyncStream { kind: StreamKind::Unix(stream), source, reactor: Arc::clone(reactor) })
    }

    fn do_read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match &self.kind {
            StreamKind::Tcp(s) => (&mut &*s).read(buf),
            StreamKind::Unix(s) => (&mut &*s).read(buf),
        }
    }

    fn do_write(&self, buf: &[u8]) -> io::Result<usize> {
        match &self.kind {
            StreamKind::Tcp(s) => (&mut &*s).write(buf),
            StreamKind::Unix(s) => (&mut &*s).write(buf),
        }
    }

    /// One nonblocking read attempt under the readiness protocol (see the
    /// reactor docs): try, and on `WouldBlock` clear readiness, park, and
    /// re-check to close the wake race.
    pub fn poll_read(&self, cx: &mut Context<'_>, buf: &mut [u8]) -> Poll<io::Result<usize>> {
        poll_io(&self.source, Interest::Read, cx, || self.do_read(buf))
    }

    /// One nonblocking write attempt (same protocol as [`poll_read`]).
    ///
    /// [`poll_read`]: AsyncStream::poll_read
    pub fn poll_write(&self, cx: &mut Context<'_>, buf: &[u8]) -> Poll<io::Result<usize>> {
        poll_io(&self.source, Interest::Write, cx, || self.do_write(buf))
    }

    /// Reads at least one byte into `buf`, or resolves `Eof`; with a drain
    /// signal supplied, `Drained` preempts a read that has not started.
    pub async fn read_some(
        &self,
        buf: &mut [u8],
        drain: Option<&DrainListener<'_>>,
    ) -> io::Result<ReadEvent> {
        std::future::poll_fn(|cx| {
            if drain.is_some_and(|d| d.poll_set(cx)) {
                return Poll::Ready(Ok(ReadEvent::Drained));
            }
            match self.poll_read(cx, buf) {
                Poll::Ready(Ok(0)) => Poll::Ready(Ok(ReadEvent::Eof)),
                Poll::Ready(Ok(n)) => Poll::Ready(Ok(ReadEvent::Data(n))),
                Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
                Poll::Pending => Poll::Pending,
            }
        })
        .await
    }

    /// Writes all of `buf`, suspending between partial writes. Writes are
    /// *not* drain-preempted: graceful shutdown wants queued responses
    /// flushed, and the peer is (by protocol) always reading.
    pub async fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut written = 0;
        std::future::poll_fn(|cx| {
            while written < buf.len() {
                match self.poll_write(cx, &buf[written..]) {
                    Poll::Ready(Ok(0)) => {
                        return Poll::Ready(Err(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "peer stopped accepting bytes",
                        )))
                    }
                    Poll::Ready(Ok(n)) => written += n,
                    Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                    Poll::Pending => return Poll::Pending,
                }
            }
            Poll::Ready(Ok(()))
        })
        .await
    }
}

impl Drop for AsyncStream {
    fn drop(&mut self) {
        self.reactor.deregister(&self.source);
    }
}

/// The shared clear-try-park-recheck loop behind every I/O future.
///
/// Readiness is cleared **before** the syscall attempt: an edge the
/// reactor delivers at any later point therefore lands on a cleared flag
/// and survives until the post-park recheck observes it. (Clearing after
/// a `WouldBlock` instead would wipe an edge that arrived between the
/// syscall and the clear — a lost wakeup an edge-triggered reactor never
/// repeats.)
fn poll_io<T>(
    source: &Source,
    interest: Interest,
    cx: &mut Context<'_>,
    mut op: impl FnMut() -> io::Result<T>,
) -> Poll<io::Result<T>> {
    loop {
        source.clear_ready(interest);
        match op() {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                source.set_waker(interest, cx.waker());
                if source.is_ready(interest) {
                    // An edge arrived after the clear: consume it now.
                    continue;
                }
                return Poll::Pending;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            result => return Poll::Ready(result),
        }
    }
}

/// What an accept future resolved to.
pub enum Accepted<S> {
    Stream(S),
    Drained,
}

/// A nonblocking TCP listener registered with a reactor.
pub struct AsyncTcpListener {
    listener: TcpListener,
    source: Arc<Source>,
    reactor: Arc<Reactor>,
}

impl AsyncTcpListener {
    pub fn bind(addr: &str, reactor: &Arc<Reactor>) -> io::Result<AsyncTcpListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let source = reactor.register(listener.as_raw_fd())?;
        Ok(AsyncTcpListener { listener, source, reactor: Arc::clone(reactor) })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts the next connection, already registered with the reactor,
    /// or resolves `Drained` when the shutdown signal fires.
    pub async fn accept(&self, drain: &DrainListener<'_>) -> io::Result<Accepted<AsyncStream>> {
        let stream = std::future::poll_fn(|cx| {
            if drain.poll_set(cx) {
                return Poll::Ready(Ok(None));
            }
            poll_io(&self.source, Interest::Read, cx, || self.listener.accept())
                .map(|r| r.map(|(s, _)| Some(s)))
        })
        .await?;
        match stream {
            Some(s) => Ok(Accepted::Stream(AsyncStream::from_tcp(s, &self.reactor)?)),
            None => Ok(Accepted::Drained),
        }
    }
}

impl Drop for AsyncTcpListener {
    fn drop(&mut self) {
        self.reactor.deregister(&self.source);
    }
}

/// A nonblocking Unix-domain listener registered with a reactor. Removes
/// its socket file on drop.
pub struct AsyncUnixListener {
    listener: UnixListener,
    path: std::path::PathBuf,
    source: Arc<Source>,
    reactor: Arc<Reactor>,
}

impl AsyncUnixListener {
    pub fn bind(path: &std::path::Path, reactor: &Arc<Reactor>) -> io::Result<AsyncUnixListener> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let source = reactor.register(listener.as_raw_fd())?;
        Ok(AsyncUnixListener {
            listener,
            path: path.to_path_buf(),
            source,
            reactor: Arc::clone(reactor),
        })
    }

    /// Accepts the next connection (see [`AsyncTcpListener::accept`]).
    pub async fn accept(&self, drain: &DrainListener<'_>) -> io::Result<Accepted<AsyncStream>> {
        let stream = std::future::poll_fn(|cx| {
            if drain.poll_set(cx) {
                return Poll::Ready(Ok(None));
            }
            poll_io(&self.source, Interest::Read, cx, || self.listener.accept())
                .map(|r| r.map(|(s, _)| Some(s)))
        })
        .await?;
        match stream {
            Some(s) => Ok(Accepted::Stream(AsyncStream::from_unix(s, &self.reactor)?)),
            None => Ok(Accepted::Drained),
        }
    }
}

impl Drop for AsyncUnixListener {
    fn drop(&mut self) {
        self.reactor.deregister(&self.source);
        let _ = std::fs::remove_file(&self.path);
    }
}
