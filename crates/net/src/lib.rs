//! # xpv-net — a hand-rolled async runtime and the xpv wire protocol
//!
//! This crate gives the serving front-end its asynchronous substrate. The
//! build environment has no registry access, so instead of tokio/mio it
//! carries a small, self-contained implementation of each layer (the same
//! offline discipline as `crates/shims/`):
//!
//! * [`reactor`] — an epoll-based readiness reactor over thin
//!   `extern "C"` bindings ([`sys`]), one thread per runtime,
//!   edge-triggered with cached per-direction readiness;
//! * [`executor`] — a fixed pool of worker threads polling
//!   `std::future::Future` tasks ([`Runtime`]): the CPU pool connections
//!   are multiplexed onto;
//! * [`stream`] — nonblocking TCP and Unix-domain sockets as
//!   `&self`-polling async streams and listeners;
//! * [`sync`] — the async-aware semaphore / drain signal / outbox queue
//!   the server's credit and shutdown machinery is built from;
//! * [`frame`] + [`proto`] — the framed wire protocol below;
//! * [`client`] — a blocking, credit-tracking protocol client for load
//!   generators, tests, and the `xpv client` CLI.
//!
//! ## Wire protocol (version 1)
//!
//! A connection is a byte stream (TCP or Unix-domain) carrying
//! **length-prefixed frames** in each direction:
//!
//! ```text
//! frame := len:u32le  body:[u8; len]        1 ≤ len ≤ 16 MiB
//! body  := type:u8  payload:…               little-endian throughout
//! strings are u32le-length-prefixed UTF-8; patterns travel as XPath
//! text; edit subtrees travel as the model's XML serialization
//! ```
//!
//! ### Handshake
//!
//! The client speaks first: `Hello { magic: u32 = "XPVW", version: u16 }`.
//! The server answers `HelloAck { version, window }` (or `Error` + close
//! on a magic/version it cannot serve). `window` is the connection's
//! **credit allowance** — the maximum number of unacknowledged request
//! frames. Versioning is strict equality for now; the `HelloAck.version`
//! field is where a future server would negotiate downward.
//!
//! ### Requests and responses
//!
//! | client → server | server → client | carries |
//! |---|---|---|
//! | `QueryBatch { id, tenant, queries }` | `Answers { id, answers }` | query batch / per-query nodes + route |
//! | `EditBatch { id, tenant, edits }` | `EditAck { id, report }` or `Rejected { id, reason }` | document updates / post-batch `doc_version` |
//! | `StatsReq { id, tenant }` | `StatsResp { id, found, stats }` | tenant counters |
//! | `StatsV2Req { id }` | `StatsV2Resp { id, metrics }` | whole-server metrics snapshot (every family, sorted; histograms as `[count, sum, max, p50, p90, p99]` summaries) |
//! | `Goodbye` | `ServerBye` | clean close |
//! | — | `Error { message }` | fatal protocol error, then close |
//!
//! Request `id`s are chosen by the client (unique per connection);
//! responses to **different** ids may arrive out of order, which is what
//! makes pipelining useful. `EditAck.doc_version` is the server's document
//! version after the batch — a client replaying edits can assert the
//! versions it observes are exactly `1, 2, 3, …` (see the
//! `version-checked` test in `tests/async_serving.rs`).
//!
//! ### Credit-based backpressure
//!
//! Every request frame (`QueryBatch`, `EditBatch`, `StatsReq`,
//! `StatsV2Req`, `HistoryReq`, `DebugDumpReq`) **costs one
//! credit**; every response (`Answers`, `EditAck`, `StatsResp`,
//! `HistoryResp`, `DebugDumpResp`, `Rejected`) **returns it**. The handshake grants `window` credits. The
//! server enforces the window mechanically: its connection reader owns a
//! semaphore of `window` permits and does not read the next frame until a
//! permit frees, so an over-eager client is throttled by the kernel
//! socket buffer — exactly the "slow yourself down, not the server"
//! contract the old blocking `submit` provided, now per connection and
//! without pinning a thread. A conforming client (e.g. [`WireClient`])
//! tracks credits and blocks on the reply stream before overdrawing.
//!
//! ### Drain
//!
//! On graceful shutdown the server stops reading new frames, finishes
//! every batch already admitted, flushes the responses, sends
//! `ServerBye`, and closes. A request that was queued locally but not yet
//! admitted is answered with `Rejected` instead of silently dropped. The
//! client-initiated mirror is `Goodbye`: the server drains that
//! connection's in-flight work and answers `ServerBye` when nothing is
//! left.

pub mod client;
pub mod counters;
pub mod executor;
pub mod frame;
pub mod proto;
pub mod reactor;
pub mod stream;
pub mod sync;
pub mod sys;

pub use client::{Response, WireClient};
pub use counters::{WireCounters, WireCountersSnapshot};
pub use executor::Runtime;
pub use frame::{read_frame, write_frame, DecodeError, FrameEvent, MAX_FRAME};
pub use proto::{
    AnswersEncoder, Msg, WireAlert, WireAnswer, WireDump, WireMetric, WirePoint, WireRoute,
    WireRouteRef, WireSeries, WireTenantStats, WireTraceEvent, WireUpdateReport, MAGIC,
    METRIC_COUNTER, METRIC_GAUGE, METRIC_HISTOGRAM, VERSION,
};
pub use reactor::{Interest, Reactor, Source};
pub use stream::{Accepted, AsyncStream, AsyncTcpListener, AsyncUnixListener, ReadEvent};
pub use sync::{DrainSignal, NotifyQueue, Popped, Semaphore};
