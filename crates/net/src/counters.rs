//! Server-side wire-level traffic counters.
//!
//! [`WireCounters`] is the transport's contribution to the observability
//! story: one set of plain relaxed [`AtomicU64`]s counting frames, bytes,
//! credit stalls, and oversized-response rejections. The async server
//! holds one instance per listener scope (all connections of one
//! [`AsyncCacheServer`](../../xpv_engine) share it) and bumps the
//! counters from its reader loop and writer task; `xpv-engine` exposes
//! the snapshot under the `xpv_net_*` metric family in both the text
//! exposition and the `StatsV2Resp` wire frame.
//!
//! The type lives here (not in `xpv-obs`) because the fields are the wire
//! protocol's vocabulary — what counts as a frame, when a credit stall
//! happens — and because plain atomics are all the transport needs: no
//! name lookups, no striping (the reader/writer tasks of one connection
//! are the only writers of the hot fields, and cross-connection
//! contention on a `fetch_add` is cheaper than an Arc-map probe).

use std::sync::atomic::{AtomicU64, Ordering};

/// Lifetime wire-traffic counters for one server (all connections).
///
/// All increments are `Relaxed`; [`WireCounters::visit`] is the canonical
/// name enumeration (prefixed `xpv_net_` by the exposition layer).
#[derive(Debug, Default)]
pub struct WireCounters {
    /// Request frames decoded off client sockets.
    pub frames_in: AtomicU64,
    /// Response frames handed to socket writers.
    pub frames_out: AtomicU64,
    /// Frame-body bytes read (excluding the 4-byte length prefixes).
    pub bytes_in: AtomicU64,
    /// Frame-body bytes written (excluding the length prefixes).
    pub bytes_out: AtomicU64,
    /// Reads that found the connection's credit window exhausted and had
    /// to wait for a response to free a permit — the per-connection
    /// backpressure signal for sizing the credit window.
    pub credit_stalls: AtomicU64,
    /// Responses dropped for exceeding the frame-size cap and downgraded
    /// to `Rejected` (see `MAX_FRAME`).
    pub oversized_rejections: AtomicU64,
}

/// A point-in-time copy of [`WireCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireCountersSnapshot {
    pub frames_in: u64,
    pub frames_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub credit_stalls: u64,
    pub oversized_rejections: u64,
}

impl WireCounters {
    /// Fresh zeroed counters.
    pub fn new() -> WireCounters {
        WireCounters::default()
    }

    /// Accounts one decoded request frame of `body_len` body bytes.
    pub fn frame_in(&self, body_len: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Accounts one response frame of `body_len` body bytes.
    pub fn frame_out(&self, body_len: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(body_len as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> WireCountersSnapshot {
        WireCountersSnapshot {
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            credit_stalls: self.credit_stalls.load(Ordering::Relaxed),
            oversized_rejections: self.oversized_rejections.load(Ordering::Relaxed),
        }
    }
}

impl WireCountersSnapshot {
    /// The canonical counter enumeration, in declaration order — the
    /// exposition layer prefixes each name with `xpv_net_`.
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("frames_in", self.frames_in);
        f("frames_out", self.frames_out);
        f("bytes_in", self.bytes_in);
        f("bytes_out", self.bytes_out);
        f("credit_stalls", self.credit_stalls);
        f("oversized_rejections", self.oversized_rejections);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_and_bytes_accumulate() {
        let c = WireCounters::new();
        c.frame_in(10);
        c.frame_in(20);
        c.frame_out(100);
        c.credit_stalls.fetch_add(1, Ordering::Relaxed);
        c.oversized_rejections.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.frames_in, 2);
        assert_eq!(s.bytes_in, 30);
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.bytes_out, 100);
        assert_eq!(s.credit_stalls, 1);
        assert_eq!(s.oversized_rejections, 2);
    }

    #[test]
    fn visit_enumerates_every_field_once() {
        let c = WireCounters::new();
        c.frame_in(1);
        let mut names = Vec::new();
        c.snapshot().visit(&mut |name, _| names.push(name));
        assert_eq!(
            names,
            vec![
                "frames_in",
                "frames_out",
                "bytes_in",
                "bytes_out",
                "credit_stalls",
                "oversized_rejections"
            ]
        );
    }
}
