//! Length-prefixed framing plus the little-endian byte codec the protocol
//! messages are built from.
//!
//! ```text
//! frame := len:u32le  body:[u8; len]      (len ≤ MAX_FRAME, len ≥ 1)
//! body  := type:u8  payload:…             (see crate::proto)
//! ```
//!
//! Frames are the unit of both parsing and backpressure accounting: the
//! server reads exactly one frame per admission credit. `MAX_FRAME` caps a
//! single allocation a remote peer can force.

use std::io;

use crate::stream::{AsyncStream, ReadEvent};
use crate::sync::DrainListener;

/// Largest accepted frame body (16 MiB).
pub const MAX_FRAME: usize = 16 << 20;

/// How a frame read resolved.
pub enum FrameEvent {
    /// A complete frame body (type byte + payload).
    Frame(Vec<u8>),
    /// Clean EOF on a frame boundary.
    Eof,
    /// The drain signal fired before the next frame started.
    Drained,
}

/// Reads one frame. EOF mid-frame is an error; EOF or drain on a frame
/// boundary is clean. A drain that fires *mid-frame* finishes reading the
/// frame (the client already sent it; serving it is part of the drain
/// contract).
pub async fn read_frame(stream: &AsyncStream, drain: &DrainListener<'_>) -> io::Result<FrameEvent> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(stream, &mut len_buf, drain, true).await? {
        Progress::Done => {}
        Progress::Eof => return Ok(FrameEvent::Eof),
        Progress::Drained => return Ok(FrameEvent::Drained),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} outside 1..={MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len];
    match read_exact_or_eof(stream, &mut body, drain, false).await? {
        Progress::Done => Ok(FrameEvent::Frame(body)),
        Progress::Eof => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame")),
        Progress::Drained => unreachable!("drain is only observed before the first byte"),
    }
}

/// Writes one frame (`body` must already start with its type byte).
/// Refuses (with `InvalidData`, nothing written) a body outside
/// `1..=MAX_FRAME` — the peer would kill the connection as a protocol
/// error anyway, so the oversize must be handled by the caller (the
/// server downgrades such responses to `Rejected`).
pub async fn write_frame(stream: &AsyncStream, body: &[u8]) -> io::Result<()> {
    if body.is_empty() || body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes outside 1..={MAX_FRAME}", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    stream.write_all(&frame).await
}

enum Progress {
    Done,
    Eof,
    Drained,
}

/// Fills `buf` exactly. `Eof` only before the first byte; `Drained` only
/// when `drainable` (i.e. between frames, not inside one — once a frame
/// has started the read runs to completion regardless of drain).
async fn read_exact_or_eof(
    stream: &AsyncStream,
    buf: &mut [u8],
    drain: &DrainListener<'_>,
    drainable: bool,
) -> io::Result<Progress> {
    let mut filled = 0;
    while filled < buf.len() {
        // Drain preempts only before the first byte; once a frame has
        // started, the read runs to completion.
        let drain = (drainable && filled == 0).then_some(drain);
        let event = stream.read_some(&mut buf[filled..], drain).await?;
        match event {
            ReadEvent::Data(n) => filled += n,
            ReadEvent::Eof if filled == 0 => return Ok(Progress::Eof),
            ReadEvent::Eof => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame"))
            }
            ReadEvent::Drained => return Ok(Progress::Drained),
        }
    }
    Ok(Progress::Done)
}

/// Little-endian append-only encoder over a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder::default()
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Length-prefixed (u32) UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Bytes written so far — a position usable with
    /// [`Encoder::patch_u32`] to reserve a count field and fill it in
    /// once the count is known, without building the payload twice.
    pub fn position(&self) -> usize {
        self.buf.len()
    }

    /// Overwrites the 4 bytes at `pos` (a former [`Encoder::position`]
    /// where a `u32` was written) with `v`, little-endian.
    pub fn patch_u32(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A decode failure (malformed or truncated payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Cursor-style little-endian decoder over a received frame body.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DecodeError(format!("invalid UTF-8 string: {e}")))
    }

    /// Asserts the payload is fully consumed (catches version skew early).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError(format!("{} trailing bytes after message", self.buf.len() - self.pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_decoder_round_trip() {
        let mut e = Encoder::new();
        e.u8(7).u16(513).u32(70_000).u64(1 << 40).str("héllo");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 513);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn patch_u32_rewrites_a_reserved_slot() {
        let mut e = Encoder::new();
        e.u8(0xAA);
        let pos = e.position();
        e.u32(0); // reserved
        e.u16(7);
        e.patch_u32(pos, 0xDEAD_BEEF);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 0xAA);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u16().unwrap(), 7);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_decode_error() {
        let mut e = Encoder::new();
        e.u32(10); // claims a 10-byte string with no bytes behind it
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert!(d.str().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Encoder::new();
        e.u8(1).u8(2);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        d.u8().unwrap();
        assert!(d.finish().is_err());
    }
}
