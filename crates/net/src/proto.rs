//! The xpv wire protocol: message types and their binary codec.
//!
//! See the crate docs ([`crate`]) for the full protocol specification —
//! handshake, frame grammar, credit semantics, and the drain sequence.
//! This module is the mechanical part: [`Msg`] ⇄ frame-body bytes.
//!
//! Patterns travel as the fragment's XPath text (`parse_xpath ∘ to_xpath`
//! is the identity on patterns — property-tested in `xpv-pattern`), and
//! edit subtrees travel as the model's XML serialization, so the protocol
//! has no bespoke tree encoding to keep in sync with the model crate.

use xpv_maintain::Edit;
use xpv_model::{parse_xml, to_xml, Label, NodeId};
use xpv_pattern::{parse_xpath, Pattern};

use crate::frame::{DecodeError, Decoder, Encoder};

/// Handshake magic ("XPVW", little-endian).
pub const MAGIC: u32 = 0x5756_5058;

/// Protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Frame type tags (first body byte).
mod tag {
    pub const HELLO: u8 = 0x01;
    pub const HELLO_ACK: u8 = 0x02;
    pub const QUERY_BATCH: u8 = 0x10;
    pub const ANSWERS: u8 = 0x11;
    pub const EDIT_BATCH: u8 = 0x20;
    pub const EDIT_ACK: u8 = 0x21;
    pub const STATS_REQ: u8 = 0x30;
    pub const STATS_RESP: u8 = 0x31;
    pub const STATS2_REQ: u8 = 0x32;
    pub const STATS2_RESP: u8 = 0x33;
    pub const HISTORY_REQ: u8 = 0x34;
    pub const HISTORY_RESP: u8 = 0x35;
    pub const DUMP_REQ: u8 = 0x36;
    pub const DUMP_RESP: u8 = 0x37;
    pub const REJECTED: u8 = 0x40;
    pub const GOODBYE: u8 = 0x50;
    pub const SERVER_BYE: u8 = 0x51;
    pub const ERROR: u8 = 0x7F;
}

/// How one query in an [`Msg::Answers`] frame was served (the wire form of
/// the engine's `Route`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRoute {
    /// Direct evaluation on the document.
    Direct,
    /// An equivalent rewriting over one view.
    ViaView { view: String, rewriting: String },
    /// A compensation over a multi-view intersection.
    Intersect { views: Vec<String>, compensation: String },
}

impl WireRoute {
    /// The borrowed view of this route, for encoding without cloning.
    pub fn as_ref(&self) -> WireRouteRef<'_> {
        match self {
            WireRoute::Direct => WireRouteRef::Direct,
            WireRoute::ViaView { view, rewriting } => WireRouteRef::ViaView { view, rewriting },
            WireRoute::Intersect { views, compensation } => {
                WireRouteRef::Intersect { views, compensation }
            }
        }
    }
}

/// [`WireRoute`] by reference: what [`AnswersEncoder`] consumes, so a
/// server can serialize provenance it already owns (the engine's route
/// strings) without allocating intermediate `WireRoute` clones.
#[derive(Clone, Copy, Debug)]
pub enum WireRouteRef<'a> {
    /// Direct evaluation on the document.
    Direct,
    /// An equivalent rewriting over one view.
    ViaView { view: &'a str, rewriting: &'a str },
    /// A compensation over a multi-view intersection.
    Intersect { views: &'a [String], compensation: &'a str },
}

/// One query's answer on the wire: output nodes (raw `NodeId` values in
/// the server's document) plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireAnswer {
    pub nodes: Vec<NodeId>,
    pub route: WireRoute,
}

/// Streams an [`Msg::Answers`] frame body straight into its final byte
/// buffer: the answer count is reserved up front and patched on
/// [`AnswersEncoder::finish`], and each answer's node list is written
/// directly from the engine's borrowed slices — no intermediate
/// [`WireAnswer`] vectors, no route-string clones. Produces bytes
/// identical to `Msg::Answers { .. }.encode()` for the same content.
#[derive(Debug)]
pub struct AnswersEncoder {
    e: Encoder,
    count_pos: usize,
    count: u32,
}

impl AnswersEncoder {
    /// Starts the Answers frame for batch `id`.
    pub fn new(id: u64) -> AnswersEncoder {
        let mut e = Encoder::new();
        e.u8(tag::ANSWERS).u64(id);
        let count_pos = e.position();
        e.u32(0); // answer count, patched in finish()
        AnswersEncoder { e, count_pos, count: 0 }
    }

    /// Appends one answer: provenance plus its output nodes.
    pub fn answer(&mut self, route: WireRouteRef<'_>, nodes: &[NodeId]) -> &mut Self {
        encode_route_ref(&mut self.e, route);
        self.e.u32(nodes.len() as u32);
        for n in nodes {
            self.e.u32(n.0);
        }
        self.count += 1;
        self
    }

    /// Bytes encoded so far (the frame-body size if finished now) —
    /// lets a server check `MAX_FRAME` before enqueuing.
    pub fn byte_len(&self) -> usize {
        self.e.position()
    }

    /// Patches the answer count and returns the finished frame body.
    pub fn finish(mut self) -> Vec<u8> {
        self.e.patch_u32(self.count_pos, self.count);
        self.e.finish()
    }
}

/// What an [`Msg::EditAck`] reports (the wire form of `UpdateReport`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireUpdateReport {
    pub edits_applied: u64,
    /// Document version **after** the batch — the client's consistency
    /// check: acks from one connection arrive with strictly increasing
    /// versions, and version `v` means exactly `v` update batches precede
    /// every answer computed at `v`.
    pub doc_version: u64,
    pub views_refreshed: u64,
    pub views_changed: u64,
    pub routes_dropped: u64,
}

/// Per-tenant counters on the wire (the engine's `TenantStats` without the
/// engine dependency — `xpv-engine` converts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireTenantStats {
    pub batches: u64,
    pub queries: u64,
    pub view_hits: u64,
    pub intersect_hits: u64,
    pub direct: u64,
    pub updates_applied: u64,
    pub views_refreshed_incrementally: u64,
    pub admission_waits: u64,
}

/// Metric kind discriminants for [`WireMetric::kind`].
pub const METRIC_COUNTER: u8 = 0;
/// See [`METRIC_COUNTER`].
pub const METRIC_GAUGE: u8 = 1;
/// See [`METRIC_COUNTER`].
pub const METRIC_HISTOGRAM: u8 = 2;

/// One metric sample in a [`Msg::StatsV2Resp`] frame — the wire form of
/// the observability registry's snapshot (`xpv-obs`'s `Sample`, without
/// the dependency; `xpv-engine` converts both ways).
///
/// `values` is kind-dependent: counters and gauges carry one value;
/// histograms carry `[count, sum, max, p50, p90, p99]` (the summary the
/// server computes from its log-bucketed histogram — raw buckets do not
/// travel).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMetric {
    /// Full metric name, e.g. `xpv_cache_queries`.
    pub name: String,
    /// Label pairs, e.g. `[("tenant", "acme")]`. Usually empty.
    pub labels: Vec<(String, String)>,
    /// [`METRIC_COUNTER`], [`METRIC_GAUGE`], or [`METRIC_HISTOGRAM`].
    pub kind: u8,
    /// Kind-dependent payload (see type docs).
    pub values: Vec<u64>,
}

/// One recorded tick of one history series (the wire form of `xpv-obs`'s
/// `HistoryPoint`).
///
/// `values` is kind-dependent, like [`WireMetric::values`]: counter
/// points carry `[delta]` (the increment over the tick), gauge points
/// `[level]`, histogram points `[count, p50, p90, p99]` (the tick's
/// *interval* percentiles). The length prefix makes every point
/// self-delimiting, so a decoder can skip points of kinds it does not
/// know.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WirePoint {
    /// Microseconds since the server's history started.
    pub at_us: u64,
    /// Kind-dependent payload (see type docs).
    pub values: Vec<u64>,
}

/// One metric's retained history in a [`Msg::HistoryResp`] /
/// [`Msg::DebugDumpResp`] frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireSeries {
    /// Rendered series key: the metric name with labels inlined
    /// (`xpv_tenant_queries{tenant="acme"}`).
    pub name: String,
    /// [`METRIC_COUNTER`], [`METRIC_GAUGE`], or [`METRIC_HISTOGRAM`] —
    /// decoders skip series of unknown kinds.
    pub kind: u8,
    /// Points oldest first.
    pub points: Vec<WirePoint>,
}

/// One watchdog rule's state in a [`Msg::DebugDumpResp`] frame (the wire
/// form of `xpv-obs`'s `Alert`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireAlert {
    /// Rule name (its counter is `xpv_alert_<name>_total`).
    pub name: String,
    /// Rule kind tag (`heartbeat_stall` | `slo_burn`), free-form so new
    /// rule kinds need no protocol change.
    pub kind: String,
    /// Firing as of the server's last sampler tick.
    pub firing: bool,
    /// Tick the current firing streak started at (0 = never fired).
    pub since_tick: u64,
    /// Lifetime count of firing ticks.
    pub fired_total: u64,
    /// Human-readable evidence from the last firing evaluation.
    pub detail: String,
}

/// One drained trace span in a [`Msg::DebugDumpResp`] frame (the wire
/// form of `xpv-obs`'s `TraceEvent`; phases travel as their names).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// Span kind (`net.query`, `cache.update`, …).
    pub kind: String,
    /// Wall time begin → finish, microseconds.
    pub total_us: u64,
    /// `(phase name, duration_us)` in mark order.
    pub phases: Vec<(String, u64)>,
}

/// The flight-recorder artifact a [`Msg::DebugDumpResp`] carries: one
/// structured bundle of everything an operator needs after an incident —
/// the live metrics snapshot, the retained history window, the watchdog
/// alerts, the drained trace spans, and the knob/config state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireDump {
    /// The full metrics snapshot at dump time (as a `StatsV2Resp` would
    /// carry).
    pub metrics: Vec<WireMetric>,
    /// The server's sampler tick interval, microseconds (0 = sampler
    /// not running).
    pub interval_us: u64,
    /// The retained history window, every series.
    pub series: Vec<WireSeries>,
    /// Every watchdog rule's state.
    pub alerts: Vec<WireAlert>,
    /// Trace spans drained from the server's rings at dump time. Note
    /// that draining is destructive server-side: the spans move into
    /// this dump.
    pub traces: Vec<WireTraceEvent>,
    /// Free-form `(key, value)` config/knob pairs (sampling rate, rule
    /// roster, window sizes, …).
    pub config: Vec<(String, String)>,
}

/// One protocol message (a decoded frame body).
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → server, first frame: magic + the highest version the
    /// client speaks.
    Hello { version: u16 },
    /// Server → client: the agreed version plus this connection's credit
    /// window (max unacknowledged batches).
    HelloAck { version: u16, window: u32 },
    /// Client → server: answer `queries` for `tenant`. Costs one credit.
    QueryBatch { id: u64, tenant: String, queries: Vec<Pattern> },
    /// Server → client: the answers for batch `id`, input order. Returns
    /// the credit.
    Answers { id: u64, answers: Vec<WireAnswer> },
    /// Client → server: apply `edits` for `tenant`. Costs one credit.
    EditBatch { id: u64, tenant: String, edits: Vec<Edit> },
    /// Server → client: edit batch `id` applied. Returns the credit.
    EditAck { id: u64, report: WireUpdateReport },
    /// Client → server: request `tenant`'s counters. Costs one credit.
    StatsReq { id: u64, tenant: String },
    /// Server → client: the counters (`found == false` ⇒ zeroed stats for
    /// a tenant the server has not seen). Returns the credit.
    StatsResp { id: u64, found: bool, stats: WireTenantStats },
    /// Client → server: request the **whole server's** metrics snapshot —
    /// every family (oracle, cache, per-tenant, maintain, net, server),
    /// not one tenant's counters. Costs one credit.
    StatsV2Req { id: u64 },
    /// Server → client: the metrics snapshot, sorted by (name, labels).
    /// Returns the credit.
    StatsV2Resp { id: u64, metrics: Vec<WireMetric> },
    /// Client → server: request the server-side metric history (every
    /// retained series). Costs one credit.
    HistoryReq { id: u64 },
    /// Server → client: the retained history — the sampler interval and
    /// every series' ring, oldest point first. `interval_us == 0` means
    /// no sampler is running (empty series list). Returns the credit.
    HistoryResp { id: u64, interval_us: u64, series: Vec<WireSeries> },
    /// Client → server: request a flight-recorder dump. **Drains the
    /// server's trace rings** into the response. Costs one credit.
    DebugDumpReq { id: u64 },
    /// Server → client: the flight-recorder artifact. Forward-tolerant
    /// like [`Msg::StatsV2Resp`]: samples, points, and series of unknown
    /// kinds are skipped by old decoders, not errors. Returns the credit.
    DebugDumpResp { id: u64, dump: WireDump },
    /// Server → client: request `id` was not served (drain, bad edit, …).
    /// Returns the credit.
    Rejected { id: u64, reason: String },
    /// Client → server: clean half-close; the server answers everything
    /// in flight, replies [`Msg::ServerBye`], and closes.
    Goodbye,
    /// Server → client: no more responses will follow.
    ServerBye,
    /// Fatal protocol error; the connection closes after this frame.
    Error { message: String },
}

impl Msg {
    /// Encodes into a frame body (type byte first).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Msg::Hello { version } => {
                e.u8(tag::HELLO).u32(MAGIC).u16(*version);
            }
            Msg::HelloAck { version, window } => {
                e.u8(tag::HELLO_ACK).u16(*version).u32(*window);
            }
            Msg::QueryBatch { id, tenant, queries } => {
                e.u8(tag::QUERY_BATCH).u64(*id).str(tenant).u32(queries.len() as u32);
                for q in queries {
                    e.str(&q.to_string());
                }
            }
            Msg::Answers { id, answers } => {
                e.u8(tag::ANSWERS).u64(*id).u32(answers.len() as u32);
                for a in answers {
                    encode_route(&mut e, &a.route);
                    e.u32(a.nodes.len() as u32);
                    for n in &a.nodes {
                        e.u32(n.0);
                    }
                }
            }
            Msg::EditBatch { id, tenant, edits } => {
                e.u8(tag::EDIT_BATCH).u64(*id).str(tenant).u32(edits.len() as u32);
                for edit in edits {
                    encode_edit(&mut e, edit);
                }
            }
            Msg::EditAck { id, report } => {
                e.u8(tag::EDIT_ACK)
                    .u64(*id)
                    .u64(report.edits_applied)
                    .u64(report.doc_version)
                    .u64(report.views_refreshed)
                    .u64(report.views_changed)
                    .u64(report.routes_dropped);
            }
            Msg::StatsReq { id, tenant } => {
                e.u8(tag::STATS_REQ).u64(*id).str(tenant);
            }
            Msg::StatsResp { id, found, stats } => {
                e.u8(tag::STATS_RESP)
                    .u64(*id)
                    .u8(u8::from(*found))
                    .u64(stats.batches)
                    .u64(stats.queries)
                    .u64(stats.view_hits)
                    .u64(stats.intersect_hits)
                    .u64(stats.direct)
                    .u64(stats.updates_applied)
                    .u64(stats.views_refreshed_incrementally)
                    .u64(stats.admission_waits);
            }
            Msg::StatsV2Req { id } => {
                e.u8(tag::STATS2_REQ).u64(*id);
            }
            Msg::StatsV2Resp { id, metrics } => {
                e.u8(tag::STATS2_RESP).u64(*id);
                encode_metric_list(&mut e, metrics);
            }
            Msg::HistoryReq { id } => {
                e.u8(tag::HISTORY_REQ).u64(*id);
            }
            Msg::HistoryResp { id, interval_us, series } => {
                e.u8(tag::HISTORY_RESP).u64(*id).u64(*interval_us);
                encode_series_list(&mut e, series);
            }
            Msg::DebugDumpReq { id } => {
                e.u8(tag::DUMP_REQ).u64(*id);
            }
            Msg::DebugDumpResp { id, dump } => {
                e.u8(tag::DUMP_RESP).u64(*id).u64(dump.interval_us);
                encode_metric_list(&mut e, &dump.metrics);
                encode_series_list(&mut e, &dump.series);
                e.u32(dump.alerts.len() as u32);
                for a in &dump.alerts {
                    e.str(&a.name)
                        .str(&a.kind)
                        .u8(u8::from(a.firing))
                        .u64(a.since_tick)
                        .u64(a.fired_total)
                        .str(&a.detail);
                }
                e.u32(dump.traces.len() as u32);
                for t in &dump.traces {
                    e.str(&t.kind).u64(t.total_us).u32(t.phases.len() as u32);
                    for (phase, us) in &t.phases {
                        e.str(phase).u64(*us);
                    }
                }
                e.u32(dump.config.len() as u32);
                for (k, v) in &dump.config {
                    e.str(k).str(v);
                }
            }
            Msg::Rejected { id, reason } => {
                e.u8(tag::REJECTED).u64(*id).str(reason);
            }
            Msg::Goodbye => {
                e.u8(tag::GOODBYE);
            }
            Msg::ServerBye => {
                e.u8(tag::SERVER_BYE);
            }
            Msg::Error { message } => {
                e.u8(tag::ERROR).str(message);
            }
        }
        e.finish()
    }

    /// Decodes a frame body. Every byte must be consumed.
    pub fn decode(body: &[u8]) -> Result<Msg, DecodeError> {
        let mut d = Decoder::new(body);
        let msg = match d.u8()? {
            tag::HELLO => {
                let magic = d.u32()?;
                if magic != MAGIC {
                    return Err(DecodeError(format!(
                        "bad handshake magic {magic:#010x} (expected {MAGIC:#010x})"
                    )));
                }
                Msg::Hello { version: d.u16()? }
            }
            tag::HELLO_ACK => Msg::HelloAck { version: d.u16()?, window: d.u32()? },
            tag::QUERY_BATCH => {
                let id = d.u64()?;
                let tenant = d.str()?;
                let n = d.u32()? as usize;
                let mut queries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let text = d.str()?;
                    queries.push(
                        parse_xpath(&text)
                            .map_err(|e| DecodeError(format!("query {text:?}: {e}")))?,
                    );
                }
                Msg::QueryBatch { id, tenant, queries }
            }
            tag::ANSWERS => {
                let id = d.u64()?;
                let n = d.u32()? as usize;
                let mut answers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let route = decode_route(&mut d)?;
                    let count = d.u32()? as usize;
                    let mut nodes = Vec::with_capacity(count.min(65536));
                    for _ in 0..count {
                        nodes.push(NodeId(d.u32()?));
                    }
                    answers.push(WireAnswer { nodes, route });
                }
                Msg::Answers { id, answers }
            }
            tag::EDIT_BATCH => {
                let id = d.u64()?;
                let tenant = d.str()?;
                let n = d.u32()? as usize;
                let mut edits = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    edits.push(decode_edit(&mut d)?);
                }
                Msg::EditBatch { id, tenant, edits }
            }
            tag::EDIT_ACK => Msg::EditAck {
                id: d.u64()?,
                report: WireUpdateReport {
                    edits_applied: d.u64()?,
                    doc_version: d.u64()?,
                    views_refreshed: d.u64()?,
                    views_changed: d.u64()?,
                    routes_dropped: d.u64()?,
                },
            },
            tag::STATS_REQ => Msg::StatsReq { id: d.u64()?, tenant: d.str()? },
            tag::STATS_RESP => Msg::StatsResp {
                id: d.u64()?,
                found: d.u8()? != 0,
                stats: WireTenantStats {
                    batches: d.u64()?,
                    queries: d.u64()?,
                    view_hits: d.u64()?,
                    intersect_hits: d.u64()?,
                    direct: d.u64()?,
                    updates_applied: d.u64()?,
                    views_refreshed_incrementally: d.u64()?,
                    admission_waits: d.u64()?,
                },
            },
            tag::STATS2_REQ => Msg::StatsV2Req { id: d.u64()? },
            tag::STATS2_RESP => {
                let id = d.u64()?;
                Msg::StatsV2Resp { id, metrics: decode_metric_list(&mut d)? }
            }
            tag::HISTORY_REQ => Msg::HistoryReq { id: d.u64()? },
            tag::HISTORY_RESP => {
                let id = d.u64()?;
                let interval_us = d.u64()?;
                Msg::HistoryResp { id, interval_us, series: decode_series_list(&mut d)? }
            }
            tag::DUMP_REQ => Msg::DebugDumpReq { id: d.u64()? },
            tag::DUMP_RESP => {
                let id = d.u64()?;
                let interval_us = d.u64()?;
                let metrics = decode_metric_list(&mut d)?;
                let series = decode_series_list(&mut d)?;
                let alerts_n = d.u32()? as usize;
                let mut alerts = Vec::with_capacity(alerts_n.min(256));
                for _ in 0..alerts_n {
                    alerts.push(WireAlert {
                        name: d.str()?,
                        kind: d.str()?,
                        firing: d.u8()? != 0,
                        since_tick: d.u64()?,
                        fired_total: d.u64()?,
                        detail: d.str()?,
                    });
                }
                let traces_n = d.u32()? as usize;
                let mut traces = Vec::with_capacity(traces_n.min(4096));
                for _ in 0..traces_n {
                    let kind = d.str()?;
                    let total_us = d.u64()?;
                    let phases_n = d.u32()? as usize;
                    let mut phases = Vec::with_capacity(phases_n.min(64));
                    for _ in 0..phases_n {
                        phases.push((d.str()?, d.u64()?));
                    }
                    traces.push(WireTraceEvent { kind, total_us, phases });
                }
                let config_n = d.u32()? as usize;
                let mut config = Vec::with_capacity(config_n.min(256));
                for _ in 0..config_n {
                    config.push((d.str()?, d.str()?));
                }
                Msg::DebugDumpResp {
                    id,
                    dump: WireDump { metrics, interval_us, series, alerts, traces, config },
                }
            }
            tag::REJECTED => Msg::Rejected { id: d.u64()?, reason: d.str()? },
            tag::GOODBYE => Msg::Goodbye,
            tag::SERVER_BYE => Msg::ServerBye,
            tag::ERROR => Msg::Error { message: d.str()? },
            other => return Err(DecodeError(format!("unknown frame type {other:#04x}"))),
        };
        d.finish()?;
        Ok(msg)
    }
}

fn encode_metric_list(e: &mut Encoder, metrics: &[WireMetric]) {
    e.u32(metrics.len() as u32);
    for m in metrics {
        e.str(&m.name).u8(m.kind).u32(m.labels.len() as u32);
        for (k, v) in &m.labels {
            e.str(k).str(v);
        }
        e.u32(m.values.len() as u32);
        for v in &m.values {
            e.u64(*v);
        }
    }
}

/// Decodes a metric list **forward-tolerantly**: a sample of an unknown
/// kind is fully consumed (its labels and values are length-prefixed,
/// so it is self-delimiting) and then *skipped*, so an old client keeps
/// working against a server that exposes kinds it never learned —
/// the same posture short `values` payloads already get (`xpv-engine`'s
/// converter reads missing positions as 0).
fn decode_metric_list(d: &mut Decoder<'_>) -> Result<Vec<WireMetric>, DecodeError> {
    let n = d.u32()? as usize;
    let mut metrics = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = d.str()?;
        let kind = d.u8()?;
        let labels_n = d.u32()? as usize;
        let mut labels = Vec::with_capacity(labels_n.min(64));
        for _ in 0..labels_n {
            labels.push((d.str()?, d.str()?));
        }
        let values_n = d.u32()? as usize;
        let mut values = Vec::with_capacity(values_n.min(64));
        for _ in 0..values_n {
            values.push(d.u64()?);
        }
        if kind <= METRIC_HISTOGRAM {
            metrics.push(WireMetric { name, labels, kind, values });
        }
    }
    Ok(metrics)
}

fn encode_series_list(e: &mut Encoder, series: &[WireSeries]) {
    e.u32(series.len() as u32);
    for s in series {
        e.str(&s.name).u8(s.kind).u32(s.points.len() as u32);
        for p in &s.points {
            e.u64(p.at_us).u32(p.values.len() as u32);
            for v in &p.values {
                e.u64(*v);
            }
        }
    }
}

/// Decodes a history series list with the same forward tolerance as
/// [`decode_metric_list`]: a series of an unknown kind is consumed
/// (points are self-delimiting) and skipped.
fn decode_series_list(d: &mut Decoder<'_>) -> Result<Vec<WireSeries>, DecodeError> {
    let n = d.u32()? as usize;
    let mut series = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = d.str()?;
        let kind = d.u8()?;
        let points_n = d.u32()? as usize;
        let mut points = Vec::with_capacity(points_n.min(4096));
        for _ in 0..points_n {
            let at_us = d.u64()?;
            let values_n = d.u32()? as usize;
            let mut values = Vec::with_capacity(values_n.min(64));
            for _ in 0..values_n {
                values.push(d.u64()?);
            }
            points.push(WirePoint { at_us, values });
        }
        if kind <= METRIC_HISTOGRAM {
            series.push(WireSeries { name, kind, points });
        }
    }
    Ok(series)
}

const ROUTE_DIRECT: u8 = 0;
const ROUTE_VIA_VIEW: u8 = 1;
const ROUTE_INTERSECT: u8 = 2;

fn encode_route(e: &mut Encoder, route: &WireRoute) {
    encode_route_ref(e, route.as_ref());
}

fn encode_route_ref(e: &mut Encoder, route: WireRouteRef<'_>) {
    match route {
        WireRouteRef::Direct => {
            e.u8(ROUTE_DIRECT);
        }
        WireRouteRef::ViaView { view, rewriting } => {
            e.u8(ROUTE_VIA_VIEW).str(view).str(rewriting);
        }
        WireRouteRef::Intersect { views, compensation } => {
            e.u8(ROUTE_INTERSECT).u32(views.len() as u32);
            for v in views {
                e.str(v);
            }
            e.str(compensation);
        }
    }
}

fn decode_route(d: &mut Decoder<'_>) -> Result<WireRoute, DecodeError> {
    Ok(match d.u8()? {
        ROUTE_DIRECT => WireRoute::Direct,
        ROUTE_VIA_VIEW => WireRoute::ViaView { view: d.str()?, rewriting: d.str()? },
        ROUTE_INTERSECT => {
            let n = d.u32()? as usize;
            let mut views = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                views.push(d.str()?);
            }
            WireRoute::Intersect { views, compensation: d.str()? }
        }
        other => return Err(DecodeError(format!("unknown route tag {other}"))),
    })
}

const EDIT_INSERT: u8 = 0;
const EDIT_DELETE: u8 = 1;
const EDIT_RELABEL: u8 = 2;

fn encode_edit(e: &mut Encoder, edit: &Edit) {
    match edit {
        Edit::InsertSubtree { parent, subtree } => {
            e.u8(EDIT_INSERT).u32(parent.0).str(&to_xml(subtree));
        }
        Edit::DeleteSubtree { node } => {
            e.u8(EDIT_DELETE).u32(node.0);
        }
        Edit::Relabel { node, label } => {
            e.u8(EDIT_RELABEL).u32(node.0).str(label.name());
        }
    }
}

fn decode_edit(d: &mut Decoder<'_>) -> Result<Edit, DecodeError> {
    Ok(match d.u8()? {
        EDIT_INSERT => {
            let parent = NodeId(d.u32()?);
            let xml = d.str()?;
            let subtree = parse_xml(&xml).map_err(|e| DecodeError(format!("edit subtree: {e}")))?;
            Edit::InsertSubtree { parent, subtree }
        }
        EDIT_DELETE => Edit::DeleteSubtree { node: NodeId(d.u32()?) },
        EDIT_RELABEL => {
            let node = NodeId(d.u32()?);
            let name = d.str()?;
            if !Label::is_valid_name(&name) {
                return Err(DecodeError(format!("invalid relabel target {name:?}")));
            }
            Edit::Relabel { node, label: Label::new(&name) }
        }
        other => return Err(DecodeError(format!("unknown edit tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn round_trip(msg: &Msg) -> Msg {
        Msg::decode(&msg.encode()).expect("round trip decodes")
    }

    #[test]
    fn handshake_round_trips() {
        match round_trip(&Msg::Hello { version: 1 }) {
            Msg::Hello { version } => assert_eq!(version, 1),
            other => panic!("wrong decode: {other:?}"),
        }
        match round_trip(&Msg::HelloAck { version: 1, window: 32 }) {
            Msg::HelloAck { version, window } => {
                assert_eq!((version, window), (1, 32));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn query_batches_round_trip_structurally() {
        let queries = vec![pat("site/region/item[desc]/name"), pat("a//b[.//c]/d")];
        let msg = Msg::QueryBatch { id: 9, tenant: "acme".into(), queries: queries.clone() };
        match round_trip(&msg) {
            Msg::QueryBatch { id, tenant, queries: decoded } => {
                assert_eq!(id, 9);
                assert_eq!(tenant, "acme");
                assert_eq!(decoded.len(), queries.len());
                for (a, b) in decoded.iter().zip(&queries) {
                    assert!(a.structurally_eq(b), "{a} != {b}");
                }
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn answers_and_routes_round_trip() {
        let msg = Msg::Answers {
            id: 3,
            answers: vec![
                WireAnswer { nodes: vec![NodeId(1), NodeId(7)], route: WireRoute::Direct },
                WireAnswer {
                    nodes: vec![],
                    route: WireRoute::ViaView { view: "v".into(), rewriting: "a/b".into() },
                },
                WireAnswer {
                    nodes: vec![NodeId(42)],
                    route: WireRoute::Intersect {
                        views: vec!["v1".into(), "v2".into()],
                        compensation: "c".into(),
                    },
                },
            ],
        };
        match round_trip(&msg) {
            Msg::Answers { id, answers } => {
                assert_eq!(id, 3);
                assert_eq!(answers.len(), 3);
                assert_eq!(answers[0].nodes, vec![NodeId(1), NodeId(7)]);
                assert!(matches!(answers[2].route, WireRoute::Intersect { ref views, .. }
                    if views.len() == 2));
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn answers_encoder_is_byte_identical_to_msg_encode() {
        let answers = vec![
            WireAnswer { nodes: vec![NodeId(1), NodeId(7)], route: WireRoute::Direct },
            WireAnswer {
                nodes: vec![],
                route: WireRoute::ViaView { view: "v".into(), rewriting: "a/b".into() },
            },
            WireAnswer {
                nodes: vec![NodeId(42), NodeId(43), NodeId(99)],
                route: WireRoute::Intersect {
                    views: vec!["v1".into(), "v2".into()],
                    compensation: "c/d".into(),
                },
            },
        ];
        let mut enc = AnswersEncoder::new(3);
        for a in &answers {
            enc.answer(a.route.as_ref(), &a.nodes);
        }
        assert!(enc.byte_len() > 0);
        let body = enc.finish();
        assert_eq!(body, Msg::Answers { id: 3, answers }.encode());
        // The empty batch also agrees (count patched to zero).
        assert_eq!(
            AnswersEncoder::new(9).finish(),
            Msg::Answers { id: 9, answers: vec![] }.encode()
        );
    }

    #[test]
    fn edit_batches_round_trip() {
        let graft = TreeBuilder::root("item", |b| {
            b.leaf("name");
        });
        let msg = Msg::EditBatch {
            id: 5,
            tenant: "writer".into(),
            edits: vec![
                Edit::InsertSubtree { parent: NodeId(2), subtree: graft },
                Edit::DeleteSubtree { node: NodeId(9) },
                Edit::Relabel { node: NodeId(4), label: Label::new("renamed") },
            ],
        };
        match round_trip(&msg) {
            Msg::EditBatch { edits, .. } => {
                assert_eq!(edits.len(), 3);
                match &edits[0] {
                    Edit::InsertSubtree { parent, subtree } => {
                        assert_eq!(*parent, NodeId(2));
                        assert_eq!(subtree.len(), 2);
                    }
                    other => panic!("wrong edit: {other:?}"),
                }
                assert!(matches!(edits[1], Edit::DeleteSubtree { node } if node == NodeId(9)));
                assert!(
                    matches!(edits[2], Edit::Relabel { label, .. } if label.name() == "renamed")
                );
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn stats_v2_round_trips() {
        match round_trip(&Msg::StatsV2Req { id: 77 }) {
            Msg::StatsV2Req { id } => assert_eq!(id, 77),
            other => panic!("wrong decode: {other:?}"),
        }
        let metrics = vec![
            WireMetric {
                name: "xpv_cache_queries".into(),
                labels: vec![],
                kind: METRIC_COUNTER,
                values: vec![42],
            },
            WireMetric {
                name: "xpv_server_connections".into(),
                labels: vec![],
                kind: METRIC_GAUGE,
                values: vec![3],
            },
            WireMetric {
                name: "xpv_tenant_queries".into(),
                labels: vec![("tenant".into(), "acme".into())],
                kind: METRIC_COUNTER,
                values: vec![7],
            },
            WireMetric {
                name: "xpv_phase_eval_us".into(),
                labels: vec![],
                kind: METRIC_HISTOGRAM,
                values: vec![100, 12345, 900, 80, 300, 800],
            },
        ];
        match round_trip(&Msg::StatsV2Resp { id: 78, metrics: metrics.clone() }) {
            Msg::StatsV2Resp { id, metrics: decoded } => {
                assert_eq!(id, 78);
                assert_eq!(decoded, metrics);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn unknown_metric_kinds_are_skipped_not_errors() {
        // Forward tolerance: an old client receiving a StatsV2Resp with a
        // metric kind from a newer server must skip it and keep the
        // samples it understands — three metrics on the wire, the middle
        // one of future kind 9 with labels and values to step over.
        let mut e = Encoder::new();
        e.u8(tag::STATS2_RESP).u64(1).u32(3);
        e.str("xpv_cache_queries").u8(METRIC_COUNTER).u32(0).u32(1).u64(42);
        e.str("xpv_future_sketch").u8(9).u32(1).str("tenant").str("acme").u32(3);
        e.u64(7).u64(8).u64(9);
        e.str("xpv_server_connections").u8(METRIC_GAUGE).u32(0).u32(1).u64(3);
        match Msg::decode(&e.finish()).expect("unknown kind skipped, not an error") {
            Msg::StatsV2Resp { id, metrics } => {
                assert_eq!(id, 1);
                let names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
                assert_eq!(names, vec!["xpv_cache_queries", "xpv_server_connections"]);
                assert_eq!(metrics[0].values, vec![42]);
                assert_eq!(metrics[1].values, vec![3]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // A kind-9 metric whose payload is *truncated* is still an error:
        // tolerance skips well-formed unknowns, it does not mask damage.
        let mut e = Encoder::new();
        e.u8(tag::STATS2_RESP).u64(1).u32(1).str("m").u8(9).u32(1).str("k");
        assert!(Msg::decode(&e.finish()).is_err(), "truncated unknown-kind metric");
    }

    #[test]
    fn history_frames_round_trip() {
        match round_trip(&Msg::HistoryReq { id: 5 }) {
            Msg::HistoryReq { id } => assert_eq!(id, 5),
            other => panic!("wrong decode: {other:?}"),
        }
        let series = vec![
            WireSeries {
                name: "xpv_cache_queries".into(),
                kind: METRIC_COUNTER,
                points: vec![
                    WirePoint { at_us: 1_000_000, values: vec![40] },
                    WirePoint { at_us: 2_000_000, values: vec![55] },
                ],
            },
            WireSeries {
                name: "xpv_tenant_queries{tenant=\"acme\"}".into(),
                kind: METRIC_COUNTER,
                points: vec![WirePoint { at_us: 2_000_000, values: vec![7] }],
            },
            WireSeries {
                name: "xpv_phase_eval_us".into(),
                kind: METRIC_HISTOGRAM,
                points: vec![WirePoint { at_us: 2_000_000, values: vec![100, 80, 300, 800] }],
            },
        ];
        let msg = Msg::HistoryResp { id: 6, interval_us: 1_000_000, series: series.clone() };
        match round_trip(&msg) {
            Msg::HistoryResp { id, interval_us, series: decoded } => {
                assert_eq!((id, interval_us), (6, 1_000_000));
                assert_eq!(decoded, series);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn unknown_series_kinds_are_skipped() {
        let mut e = Encoder::new();
        e.u8(tag::HISTORY_RESP).u64(1).u64(1_000_000).u32(2);
        e.str("xpv_future_series").u8(7).u32(2);
        e.u64(1).u32(2).u64(10).u64(20);
        e.u64(2).u32(2).u64(11).u64(21);
        e.str("xpv_cache_queries").u8(METRIC_COUNTER).u32(1).u64(3).u32(1).u64(9);
        match Msg::decode(&e.finish()).expect("unknown series kind skipped") {
            Msg::HistoryResp { series, .. } => {
                assert_eq!(series.len(), 1);
                assert_eq!(series[0].name, "xpv_cache_queries");
                assert_eq!(series[0].points, vec![WirePoint { at_us: 3, values: vec![9] }]);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn debug_dump_round_trips() {
        match round_trip(&Msg::DebugDumpReq { id: 11 }) {
            Msg::DebugDumpReq { id } => assert_eq!(id, 11),
            other => panic!("wrong decode: {other:?}"),
        }
        let dump = WireDump {
            metrics: vec![WireMetric {
                name: "xpv_alert_stall_total".into(),
                labels: vec![],
                kind: METRIC_COUNTER,
                values: vec![2],
            }],
            interval_us: 40_000,
            series: vec![WireSeries {
                name: "xpv_hb_maintain_beats".into(),
                kind: METRIC_GAUGE,
                points: vec![WirePoint { at_us: 40_000, values: vec![5] }],
            }],
            alerts: vec![WireAlert {
                name: "maintain_stall".into(),
                kind: "heartbeat_stall".into(),
                firing: true,
                since_tick: 4,
                fired_total: 2,
                detail: "1 in flight, no beat for 2 ticks (beats=5)".into(),
            }],
            traces: vec![WireTraceEvent {
                kind: "net.query".into(),
                total_us: 1234,
                phases: vec![("admission".into(), 10), ("eval".into(), 900)],
            }],
            config: vec![("trace_sampling".into(), "1".into())],
        };
        let msg = Msg::DebugDumpResp { id: 12, dump: dump.clone() };
        match round_trip(&msg) {
            Msg::DebugDumpResp { id, dump: decoded } => {
                assert_eq!(id, 12);
                assert_eq!(decoded, dump);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // The empty dump (no sampler, nothing drained) round-trips too.
        let empty = Msg::DebugDumpResp { id: 13, dump: WireDump::default() };
        match round_trip(&empty) {
            Msg::DebugDumpResp { id, dump } => {
                assert_eq!(id, 13);
                assert_eq!(dump, WireDump::default());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(Msg::decode(&[]).is_err(), "empty body");
        assert!(Msg::decode(&[0xEE]).is_err(), "unknown tag");
        // Hello with the wrong magic.
        let mut e = Encoder::new();
        e.u8(0x01).u32(0xDEAD_BEEF).u16(1);
        assert!(Msg::decode(&e.finish()).is_err(), "bad magic");
        // Trailing garbage after a valid Goodbye.
        let mut body = Msg::Goodbye.encode();
        body.push(0);
        assert!(Msg::decode(&body).is_err(), "trailing bytes");
        // A query that does not parse.
        let mut e = Encoder::new();
        e.u8(0x10).u64(1).str("t").u32(1).str("a[[[");
        assert!(Msg::decode(&e.finish()).is_err(), "unparseable query");
    }
}
