//! Small async-aware synchronization primitives shared by the serving
//! front-end: a counting [`Semaphore`] (the credit window), a
//! broadcast-once [`DrainSignal`], and a waker-backed [`NotifyQueue`]
//! (per-connection outbox).
//!
//! All three are usable from both async tasks (via wakers) and plain
//! threads (via condvars) — the in-process compatibility transport submits
//! from synchronous threads into the async pool, so the window must block
//! a thread just as happily as it parks a task.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// A counting semaphore with both async (`acquire`) and blocking
/// (`acquire_blocking`) acquisition. Permits are plain counts — dropping
/// the semaphore while permits are out is fine; nothing is leaked.
#[derive(Debug)]
pub struct Semaphore {
    state: Mutex<SemState>,
    cv: Condvar,
}

#[derive(Debug)]
struct SemState {
    permits: usize,
    waiters: VecDeque<Waker>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            state: Mutex::new(SemState { permits, waiters: VecDeque::new() }),
            cv: Condvar::new(),
        }
    }

    /// Takes one permit without waiting; `false` when none are free.
    pub fn try_acquire(&self) -> bool {
        let mut state = self.state.lock().expect("semaphore poisoned");
        if state.permits > 0 {
            state.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Takes one permit, blocking the calling **thread** until one frees.
    /// Returns `true` if the call had to wait (the contention signal the
    /// `admission_waits` counter records).
    pub fn acquire_blocking(&self) -> bool {
        let mut state = self.state.lock().expect("semaphore poisoned");
        let mut waited = false;
        while state.permits == 0 {
            waited = true;
            state = self.cv.wait(state).expect("semaphore poisoned");
        }
        state.permits -= 1;
        waited
    }

    /// Takes one permit, suspending the calling **task** until one frees.
    pub fn acquire(&self) -> Acquire<'_> {
        Acquire { sem: self }
    }

    /// Returns one permit, waking **all** parked tasks plus one blocked
    /// thread candidate. Waking everyone (rather than one) is deliberate: a
    /// parked waker whose future has since been dropped would otherwise
    /// swallow the only wake and starve a live waiter. Losers re-check and
    /// re-park; waiter sets are window-sized, so the herd is tiny.
    pub fn release(&self) {
        let wakers = {
            let mut state = self.state.lock().expect("semaphore poisoned");
            state.permits += 1;
            std::mem::take(&mut state.waiters)
        };
        self.cv.notify_one();
        for w in wakers {
            w.wake();
        }
    }

    /// Free permits right now (diagnostic).
    pub fn available(&self) -> usize {
        self.state.lock().expect("semaphore poisoned").permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire<'a> {
    sem: &'a Semaphore,
}

impl Future for Acquire<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut state = self.sem.state.lock().expect("semaphore poisoned");
        if state.permits > 0 {
            state.permits -= 1;
            Poll::Ready(())
        } else {
            // Duplicate wakers from re-polls are harmless: a spurious wake
            // just re-runs this check.
            state.waiters.push_back(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A set-once broadcast flag: [`DrainSignal::set`] wakes every parked task
/// and blocked thread, and every later wait completes immediately. The
/// graceful-shutdown backbone — connection readers and acceptors race
/// their I/O against `wait()`.
#[derive(Debug, Default)]
pub struct DrainSignal {
    state: Mutex<DrainState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct DrainState {
    set: bool,
    next_id: u64,
    waiters: std::collections::HashMap<u64, Waker>,
}

impl DrainSignal {
    pub fn new() -> DrainSignal {
        DrainSignal::default()
    }

    /// Fires the signal (idempotent).
    pub fn set(&self) {
        let waiters = {
            let mut state = self.state.lock().expect("drain signal poisoned");
            state.set = true;
            std::mem::take(&mut state.waiters)
        };
        self.cv.notify_all();
        for (_, w) in waiters {
            w.wake();
        }
    }

    pub fn is_set(&self) -> bool {
        self.state.lock().expect("drain signal poisoned").set
    }

    /// Subscribes a new listener. Each connection/acceptor task holds one
    /// for its lifetime: re-registration overwrites its keyed waker slot
    /// in O(1), and dropping the listener removes the slot — a
    /// long-running server never accumulates wakers of finished tasks.
    pub fn listener(&self) -> DrainListener<'_> {
        let id = {
            let mut state = self.state.lock().expect("drain signal poisoned");
            state.next_id += 1;
            state.next_id
        };
        DrainListener { signal: self, id }
    }
}

/// One task's subscription to a [`DrainSignal`]
/// (see [`DrainSignal::listener`]).
#[derive(Debug)]
pub struct DrainListener<'a> {
    signal: &'a DrainSignal,
    id: u64,
}

impl DrainListener<'_> {
    /// Poll-style wait: registers the task's waker under this listener's
    /// slot and reports whether the signal has fired. I/O futures call
    /// this first so a drain both wakes and preempts them.
    pub fn poll_set(&self, cx: &mut Context<'_>) -> bool {
        use std::collections::hash_map::Entry;
        let mut state = self.signal.state.lock().expect("drain signal poisoned");
        if state.set {
            return true;
        }
        match state.waiters.entry(self.id) {
            Entry::Occupied(mut slot) => {
                if !slot.get().will_wake(cx.waker()) {
                    slot.insert(cx.waker().clone());
                }
            }
            Entry::Vacant(slot) => {
                slot.insert(cx.waker().clone());
            }
        }
        false
    }

    /// Whether the signal has fired (no registration).
    pub fn is_set(&self) -> bool {
        self.signal.is_set()
    }
}

impl Drop for DrainListener<'_> {
    fn drop(&mut self) {
        self.signal.state.lock().expect("drain signal poisoned").waiters.remove(&self.id);
    }
}

/// An unbounded waker-backed queue with single-consumer semantics: the
/// per-connection outbox. Producers [`NotifyQueue::push`] from any task or
/// thread; the single writer task [`NotifyQueue::poll_pop`]s. Closing
/// wakes the consumer, which drains the remainder and then sees `Closed`.
#[derive(Debug)]
pub struct NotifyQueue<T> {
    state: Mutex<QueueState<T>>,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    waker: Option<Waker>,
    closed: bool,
}

/// What [`NotifyQueue::poll_pop`] resolved to.
pub enum Popped<T> {
    Item(T),
    Closed,
}

impl<T> Default for NotifyQueue<T> {
    fn default() -> Self {
        NotifyQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), waker: None, closed: false }),
        }
    }
}

impl<T> NotifyQueue<T> {
    pub fn new() -> NotifyQueue<T> {
        NotifyQueue::default()
    }

    /// Enqueues `item`, waking the consumer. Returns `false` (dropping the
    /// item) if the queue is closed.
    pub fn push(&self, item: T) -> bool {
        let waker = {
            let mut state = self.state.lock().expect("notify queue poisoned");
            if state.closed {
                return false;
            }
            state.items.push_back(item);
            state.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Closes the queue; already-enqueued items still drain.
    pub fn close(&self) {
        let waker = {
            let mut state = self.state.lock().expect("notify queue poisoned");
            state.closed = true;
            state.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Single-consumer pop: an item if one is queued, `Closed` once the
    /// queue is closed **and** empty, `Pending` otherwise.
    pub fn poll_pop(&self, cx: &mut Context<'_>) -> Poll<Popped<T>> {
        let mut state = self.state.lock().expect("notify queue poisoned");
        if let Some(item) = state.items.pop_front() {
            return Poll::Ready(Popped::Item(item));
        }
        if state.closed {
            return Poll::Ready(Popped::Closed);
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }

    /// Async pop (see [`NotifyQueue::poll_pop`]).
    pub async fn pop(&self) -> Popped<T> {
        std::future::poll_fn(|cx| self.poll_pop(cx)).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn blocking_semaphore_round_trip() {
        let sem = Arc::new(Semaphore::new(1));
        assert!(!sem.acquire_blocking(), "first permit is free");
        let clone = Arc::clone(&sem);
        let waiter = std::thread::spawn(move || clone.acquire_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        sem.release();
        assert!(waiter.join().expect("no panic"), "second acquire had to wait");
        sem.release();
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn drain_signal_wakes_blocking_and_is_sticky() {
        let signal = Arc::new(DrainSignal::new());
        assert!(!signal.is_set());
        signal.set();
        signal.set();
        assert!(signal.is_set());
    }

    #[test]
    fn notify_queue_drains_after_close() {
        let q: NotifyQueue<u32> = NotifyQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert!(!q.push(3), "closed queue rejects new items");
        let waker = futures_noop_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(matches!(q.poll_pop(&mut cx), Poll::Ready(Popped::Item(1))));
        assert!(matches!(q.poll_pop(&mut cx), Poll::Ready(Popped::Item(2))));
        assert!(matches!(q.poll_pop(&mut cx), Poll::Ready(Popped::Closed)));
    }

    fn futures_noop_waker() -> Waker {
        use std::task::{RawWaker, RawWakerVTable};
        fn noop(_: *const ()) {}
        fn clone(_: *const ()) -> RawWaker {
            RawWaker::new(std::ptr::null(), &VTABLE)
        }
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, noop, noop, noop);
        unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
    }
}
