//! Thin `extern "C"` bindings to the Linux epoll/eventfd syscall surface.
//!
//! The build environment has no access to registry crates (`libc`, `mio`,
//! `tokio`), so — following the offline-shim pattern in `crates/shims/` —
//! the reactor binds the handful of symbols it needs directly. The
//! constants are the stable Linux ABI values (x86-64 and aarch64 share
//! them). `epoll_event` is packed **only on x86-64**, where the kernel
//! declares it `__attribute__((packed))`; every other architecture uses
//! the natural 16-byte layout, so the struct is `repr(C, packed)` /
//! `repr(C)` by `target_arch` — getting this wrong would make the kernel
//! write past the event buffer.
//!
//! Everything unsafe is wrapped here behind `io::Result` helpers; the rest
//! of the crate never issues a raw syscall.

#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One epoll readiness event (kernel ABI layout — packed on x86-64 only).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<RawFd> {
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Registers `fd` with `interest` (an `EPOLL*` bitmask) under `token`.
pub fn epoll_add(epfd: RawFd, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
    let mut ev = EpollEvent { events: interest, data: token };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
}

/// Deregisters `fd`. The event pointer must be non-null for pre-2.6.9
/// kernels, so a dummy is passed.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    let mut ev = EpollEvent { events: 0, data: 0 };
    cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
}

/// Blocks until readiness events arrive (or `timeout_ms`; `-1` = forever),
/// filling `events` and returning how many. `EINTR` retries internally.
pub fn epoll_wait_events(
    epfd: RawFd,
    events: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    loop {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Creates a nonblocking close-on-exec eventfd (the reactor's wakeup pipe).
pub fn eventfd_create() -> io::Result<RawFd> {
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Posts one wakeup to an eventfd (adds 1 to its counter).
pub fn eventfd_signal(fd: RawFd) -> io::Result<()> {
    let one: u64 = 1;
    let n = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    if n == 8 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Drains an eventfd's counter (nonblocking; `WouldBlock` means empty).
pub fn eventfd_drain(fd: RawFd) {
    let mut buf = [0u8; 8];
    unsafe {
        let _ = read(fd, buf.as_mut_ptr(), 8);
    }
}

/// Closes a raw descriptor owned by the reactor (epoll or eventfd handles;
/// socket fds are closed by their owning std types).
pub fn close_fd(fd: RawFd) {
    unsafe {
        let _ = close(fd);
    }
}
