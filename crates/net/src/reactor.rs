//! The epoll reactor: one thread multiplexing readiness for every
//! registered descriptor.
//!
//! Descriptors are registered **once**, edge-triggered, with both read and
//! write interest ([`Reactor::register`]); per-direction readiness is
//! cached in the returned [`Source`] and consumed by the I/O futures in
//! [`crate::stream`]. The protocol is the classic try-first scheme:
//!
//! 1. attempt the nonblocking syscall;
//! 2. on `WouldBlock`, clear the direction's cached readiness, park the
//!    task's waker in the source, and re-check the flag (a reactor event
//!    landing between 1 and the park would otherwise be lost);
//! 3. the reactor thread sets the flag and wakes the parked waker when
//!    epoll reports the edge.
//!
//! Because the syscall is always attempted before parking, edge-triggered
//! notifications can never be missed (the "must drain until `WouldBlock`"
//! rule is enforced structurally). An `eventfd` interrupts `epoll_wait`
//! for shutdown.

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Waker;

use crate::sys;

/// Token reserved for the shutdown eventfd.
const WAKE_TOKEN: u64 = 0;

/// One registered descriptor's cached readiness + parked wakers.
#[derive(Debug)]
pub struct Source {
    fd: RawFd,
    token: u64,
    read: Direction,
    write: Direction,
}

#[derive(Debug, Default)]
struct Direction {
    ready: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl Direction {
    fn set_ready_and_wake(&self) {
        self.ready.store(true, Ordering::Release);
        if let Some(w) = self.waker.lock().expect("waker slot poisoned").take() {
            w.wake();
        }
    }
}

/// Which direction an I/O future is waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    Read,
    Write,
}

impl Source {
    fn direction(&self, interest: Interest) -> &Direction {
        match interest {
            Interest::Read => &self.read,
            Interest::Write => &self.write,
        }
    }

    /// Whether the direction's cached readiness is set.
    pub fn is_ready(&self, interest: Interest) -> bool {
        self.direction(interest).ready.load(Ordering::Acquire)
    }

    /// Clears cached readiness (the syscall just returned `WouldBlock`).
    pub fn clear_ready(&self, interest: Interest) {
        self.direction(interest).ready.store(false, Ordering::Release);
    }

    /// Parks `waker` to be woken on the next readiness edge.
    pub fn set_waker(&self, interest: Interest, waker: &Waker) {
        let mut slot = self.direction(interest).waker.lock().expect("waker slot poisoned");
        match slot.as_ref() {
            Some(existing) if existing.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }
}

/// The shared epoll instance plus its registration table. One reactor
/// serves one [`crate::executor::Runtime`]; its thread runs
/// [`Reactor::run`] until [`Reactor::shutdown`].
#[derive(Debug)]
pub struct Reactor {
    epfd: RawFd,
    wakefd: RawFd,
    sources: Mutex<HashMap<u64, Arc<Source>>>,
    next_token: AtomicU64,
    shutdown: AtomicBool,
}

impl Reactor {
    pub fn new() -> io::Result<Reactor> {
        let epfd = sys::epoll_create()?;
        let wakefd = sys::eventfd_create().inspect_err(|_| sys::close_fd(epfd))?;
        if let Err(e) = sys::epoll_add(epfd, wakefd, WAKE_TOKEN, sys::EPOLLIN) {
            sys::close_fd(wakefd);
            sys::close_fd(epfd);
            return Err(e);
        }
        Ok(Reactor {
            epfd,
            wakefd,
            sources: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Registers `fd` edge-triggered for both directions. The descriptor
    /// must already be nonblocking and must outlive the registration (the
    /// owning stream deregisters on drop).
    pub fn register(&self, fd: RawFd) -> io::Result<Arc<Source>> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let source = Arc::new(Source {
            fd,
            token,
            // Optimistic: the first I/O attempt decides for real.
            read: Direction { ready: AtomicBool::new(true), waker: Mutex::new(None) },
            write: Direction { ready: AtomicBool::new(true), waker: Mutex::new(None) },
        });
        let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
        self.sources.lock().expect("reactor sources poisoned").insert(token, Arc::clone(&source));
        if let Err(e) = sys::epoll_add(self.epfd, fd, token, interest) {
            self.sources.lock().expect("reactor sources poisoned").remove(&token);
            return Err(e);
        }
        Ok(source)
    }

    /// Removes `source` from the epoll set. Call before closing the fd.
    pub fn deregister(&self, source: &Source) {
        let _ = sys::epoll_del(self.epfd, source.fd);
        self.sources.lock().expect("reactor sources poisoned").remove(&source.token);
    }

    /// The reactor thread body: dispatches readiness until shutdown.
    pub fn run(&self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        loop {
            let n = match sys::epoll_wait_events(self.epfd, &mut events, -1) {
                Ok(n) => n,
                Err(_) => continue,
            };
            for ev in &events[..n] {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    sys::eventfd_drain(self.wakefd);
                    continue;
                }
                let source = {
                    let map = self.sources.lock().expect("reactor sources poisoned");
                    map.get(&token).cloned()
                };
                let Some(source) = source else { continue };
                let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                if bits & sys::EPOLLIN != 0 || hangup {
                    source.read.set_ready_and_wake();
                }
                if bits & sys::EPOLLOUT != 0 || hangup {
                    source.write.set_ready_and_wake();
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
        }
    }

    /// Asks the reactor thread to exit its next loop iteration.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = sys::eventfd_signal(self.wakefd);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close_fd(self.wakefd);
        sys::close_fd(self.epfd);
    }
}
