//! A small hand-rolled executor: a fixed pool of worker threads polling
//! `std::future::Future` tasks, paired with one [`Reactor`] thread.
//!
//! This is the **fixed CPU worker pool** the async serving front-end
//! multiplexes connections onto: each connection is one task, suspended
//! (zero threads, zero stack) while idle, scheduled onto a worker only
//! when its socket has bytes or its batch finishes. CPU-bound work (query
//! answering) runs directly on the worker that polls the task — the pool's
//! size, not the connection count, bounds parallelism.
//!
//! Scheduling is the textbook wake-to-queue design: every spawned task
//! carries an atomic 4-state flag (`IDLE`/`QUEUED`/`RUNNING`/`NOTIFIED`)
//! so a wake during a poll re-queues the task exactly once and a task is
//! never polled by two workers at a time. There is no work stealing — a
//! single injector queue + condvar is enough at serving batch granularity
//! (the per-batch work dwarfs the queue hop).
//!
//! [`Runtime::wait_idle`] blocks until every spawned task has completed —
//! the building block for graceful drain: signal the server's
//! [`crate::sync::DrainSignal`], then `wait_idle`, then [`Runtime::shutdown`].

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::thread::JoinHandle;

use crate::reactor::Reactor;

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    rt: Arc<RtShared>,
}

impl Task {
    /// Schedules the task unless it is already queued (or will observe the
    /// wake through `NOTIFIED` after its current poll).
    fn wake_task(self: &Arc<Task>) {
        loop {
            let state = self.state.load(Ordering::Acquire);
            let (target, enqueue) = match state {
                IDLE => (QUEUED, true),
                RUNNING => (NOTIFIED, false),
                QUEUED | NOTIFIED => return,
                _ => unreachable!("invalid task state"),
            };
            if self
                .state
                .compare_exchange(state, target, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if enqueue {
                    self.rt.enqueue(Arc::clone(self));
                }
                return;
            }
        }
    }

    /// Polls the task once on the calling worker.
    fn run(self: Arc<Task>) {
        self.state.store(RUNNING, Ordering::Release);
        let waker = waker_for(Arc::clone(&self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().expect("task future poisoned");
        let Some(future) = slot.as_mut() else {
            return;
        };
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *slot = None;
                drop(slot);
                self.state.store(IDLE, Ordering::Release);
                self.rt.task_done();
            }
            Poll::Pending => {
                drop(slot);
                // A wake that arrived mid-poll left NOTIFIED: re-queue.
                if self
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    self.state.store(QUEUED, Ordering::Release);
                    let rt = Arc::clone(&self.rt);
                    rt.enqueue(self);
                }
            }
        }
    }
}

fn waker_for(task: Arc<Task>) -> Waker {
    unsafe fn clone(ptr: *const ()) -> RawWaker {
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        let cloned = Arc::clone(&task);
        std::mem::forget(task);
        RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
    }
    unsafe fn wake(ptr: *const ()) {
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        task.wake_task();
    }
    unsafe fn wake_by_ref(ptr: *const ()) {
        let task = unsafe { Arc::from_raw(ptr as *const Task) };
        task.wake_task();
        std::mem::forget(task);
    }
    unsafe fn drop_raw(ptr: *const ()) {
        drop(unsafe { Arc::from_raw(ptr as *const Task) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
    unsafe { Waker::from_raw(RawWaker::new(Arc::into_raw(task) as *const (), &VTABLE)) }
}

struct RtShared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    ready_cv: Condvar,
    stopping: AtomicBool,
    /// Spawned-but-unfinished task count, guarded for `wait_idle`.
    live: Mutex<usize>,
    idle_cv: Condvar,
    reactor: Arc<Reactor>,
}

impl RtShared {
    fn enqueue(&self, task: Arc<Task>) {
        self.ready.lock().expect("run queue poisoned").push_back(task);
        self.ready_cv.notify_one();
    }

    fn task_done(&self) {
        let mut live = self.live.lock().expect("live count poisoned");
        *live -= 1;
        if *live == 0 {
            self.idle_cv.notify_all();
        }
    }
}

/// A worker pool + reactor pair driving spawned futures to completion.
pub struct Runtime {
    shared: Arc<RtShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    reactor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Runtime {
    /// Starts `workers` poll threads (minimum 1) and the reactor thread.
    pub fn new(workers: usize) -> std::io::Result<Runtime> {
        let reactor = Arc::new(Reactor::new()?);
        let shared = Arc::new(RtShared {
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            stopping: AtomicBool::new(false),
            live: Mutex::new(0),
            idle_cv: Condvar::new(),
            reactor: Arc::clone(&reactor),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xpv-async-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn async worker")
            })
            .collect();
        let reactor_thread = std::thread::Builder::new()
            .name("xpv-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(Runtime {
            shared,
            workers: Mutex::new(handles),
            reactor_thread: Mutex::new(Some(reactor_thread)),
        })
    }

    /// The reactor descriptors register with.
    pub fn reactor(&self) -> &Arc<Reactor> {
        &self.shared.reactor
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.lock().expect("worker handles poisoned").len()
    }

    /// Spawns `future` onto the pool. Returns `false` (dropping the
    /// future) if the runtime is already stopping — callers treat that as
    /// a rejected admission.
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) -> bool {
        {
            let mut live = self.shared.live.lock().expect("live count poisoned");
            *live += 1;
        }
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            state: AtomicU8::new(QUEUED),
            rt: Arc::clone(&self.shared),
        });
        // The `stopping` check happens under the run-queue lock — the same
        // lock a worker holds when it decides to exit — so a task is
        // either pushed before some worker's final empty-queue check (and
        // gets run) or rejected here; it can never be stranded in a queue
        // no worker will ever drain again.
        let pushed = {
            let mut ready = self.shared.ready.lock().expect("run queue poisoned");
            if self.shared.stopping.load(Ordering::Acquire) {
                false
            } else {
                ready.push_back(task);
                true
            }
        };
        if pushed {
            self.shared.ready_cv.notify_one();
        } else {
            self.shared.task_done();
        }
        pushed
    }

    /// Blocks until every spawned task has completed. Only meaningful once
    /// the caller has stopped the sources of new work (drain signal set,
    /// listeners closed); the runtime keeps polling while we wait.
    pub fn wait_idle(&self) {
        let mut live = self.shared.live.lock().expect("live count poisoned");
        while *live != 0 {
            live = self.shared.idle_cv.wait(live).expect("live count poisoned");
        }
    }

    /// Stops accepting spawns, joins the workers (which finish the queue
    /// first), and stops the reactor. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::Release);
        self.shared.ready_cv.notify_all();
        let mut workers = self.workers.lock().expect("worker handles poisoned");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.reactor.shutdown();
        if let Some(handle) = self.reactor_thread.lock().expect("reactor handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &RtShared) {
    loop {
        let task = {
            let mut ready = shared.ready.lock().expect("run queue poisoned");
            loop {
                if let Some(task) = ready.pop_front() {
                    break task;
                }
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                ready = shared.ready_cv.wait(ready).expect("run queue poisoned");
            }
        };
        task.run();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn spawned_tasks_run_to_completion() {
        let rt = Runtime::new(2).expect("runtime");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            assert!(rt.spawn(async move {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        rt.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn wakes_reschedule_a_pending_task() {
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0 {
                    Poll::Ready(())
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        let rt = Runtime::new(1).expect("runtime");
        let (tx, rx) = mpsc::channel();
        rt.spawn(async move {
            YieldOnce(false).await;
            tx.send(()).expect("receiver alive");
        });
        rx.recv_timeout(std::time::Duration::from_secs(5)).expect("task completed");
        rt.wait_idle();
    }

    #[test]
    fn spawn_after_shutdown_is_rejected() {
        let rt = Runtime::new(1).expect("runtime");
        rt.shutdown();
        assert!(!rt.spawn(async {}));
    }
}
