//! Embeddings and weak embeddings (Definition 2.1) and query evaluation.
//!
//! An **embedding** of a pattern `P` into a tree `t` maps pattern nodes to
//! tree nodes so that the root maps to the root, labels are preserved (`*`
//! matches anything), child edges map to child edges, and descendant edges to
//! proper descendants. A **weak embedding** drops the root condition.
//!
//! `P(t)` — the result of applying `P` to `t` — is the set of subtrees
//! `t↓o` produced by embeddings; since a subtree of `t` is identified by its
//! root node, we represent `P(t)` as the set of output **nodes**
//! ([`evaluate`]), and `P^w(t)` likewise ([`evaluate_weak`]).
//!
//! The matcher is a bottom-up dynamic program over the pattern: for every
//! pattern node `p` it computes the bitset of tree nodes `n` such that the
//! subtree of the pattern rooted at `p` embeds with `p ↦ n` (the root
//! condition ignored). Descendant-edge satisfiability is pushed up the tree
//! in one reverse-arena sweep, so the whole table costs
//! `O(|P| · |t| · avg-degree)`.

use xpv_model::{BitSet, NodeId, Tree};
use xpv_pattern::{Axis, PatId, Pattern};

/// A (weak) embedding: for every pattern node (indexed by `PatId::index`),
/// the tree node it maps to.
pub type Embedding = Vec<NodeId>;

/// For every pattern node `p`, the set of tree nodes `n` such that the
/// pattern subtree rooted at `p` embeds into `t` with `p ↦ n`.
///
/// `pin` optionally restricts a single pattern node to a single tree node —
/// used to pin `out(P)` onto a designated node during containment tests.
pub fn sub_match_sets(p: &Pattern, t: &Tree, pin: Option<(PatId, NodeId)>) -> Vec<BitSet> {
    // Bitsets are indexed by raw arena ids: edited trees keep tombstoned
    // slots, so the capacity is `arena_len`, not the live count. Tombstones
    // are detached from every live parent, so their bits (set only by the
    // raw reverse sweep below) never propagate into live results.
    let nt = t.arena_len();
    let mut sub: Vec<BitSet> = vec![BitSet::new(nt); p.len()];

    // Pattern arenas are built parent-first, so reverse arena order is a
    // post-order: children are finished before their parent is processed.
    for pi in (0..p.len()).rev() {
        let pid = PatId(pi as u32);

        // For every child c of pid, compute the set of tree nodes that have a
        // suitable witness for c (a child witness or proper-descendant
        // witness, depending on the edge axis).
        let mut child_ok: Vec<BitSet> = Vec::with_capacity(p.children(pid).len());
        for &c in p.children(pid) {
            let mut ok = BitSet::new(nt);
            match p.axis(c) {
                Axis::Child => {
                    for n in t.node_ids() {
                        if t.children(n).iter().any(|&m| sub[c.index()].contains(m.index())) {
                            ok.insert(n.index());
                        }
                    }
                }
                Axis::Descendant => {
                    // desc_ok[n] = OR over children m of (sub[c][m] | desc_ok[m]).
                    // Tree arenas are also parent-first, so iterate in reverse.
                    for ni in (0..nt).rev() {
                        let n = NodeId(ni as u32);
                        let hit = t
                            .children(n)
                            .iter()
                            .any(|&m| sub[c.index()].contains(m.index()) || ok.contains(m.index()));
                        if hit {
                            ok.insert(ni);
                        }
                    }
                }
            }
            child_ok.push(ok);
        }

        let test = p.test(pid);
        for n in t.node_ids() {
            if !test.matches(t.label(n)) {
                continue;
            }
            if let Some((pin_p, pin_n)) = pin {
                if pin_p == pid && n != pin_n {
                    continue;
                }
            }
            if child_ok.iter().all(|ok| ok.contains(n.index())) {
                sub[pi].insert(n.index());
            }
        }
    }
    sub
}

/// Propagates anchor sets down the selection path. Returns, for the output
/// node, the exact set of tree nodes reachable as embedding outputs, given
/// the set of tree nodes the pattern root may map to.
fn propagate_selection(p: &Pattern, t: &Tree, sub: &[BitSet], roots: BitSet) -> BitSet {
    let path = p.selection_path();
    let mut current = roots;
    current.intersect_with(&sub[path[0].index()]);
    for &next in &path[1..] {
        let mut reach = BitSet::new(t.arena_len());
        match p.axis(next) {
            Axis::Child => {
                for n in current.iter() {
                    for &m in t.children(NodeId(n as u32)) {
                        if sub[next.index()].contains(m.index()) {
                            reach.insert(m.index());
                        }
                    }
                }
            }
            Axis::Descendant => {
                for n in current.iter() {
                    let anchor = NodeId(n as u32);
                    t.for_each_descendant(anchor, |m| {
                        if m != anchor && sub[next.index()].contains(m.index()) {
                            reach.insert(m.index());
                        }
                    });
                }
            }
        }
        current = reach;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Evaluates `P(t)`: the set of output nodes over all embeddings.
pub fn evaluate(p: &Pattern, t: &Tree) -> Vec<NodeId> {
    let sub = sub_match_sets(p, t, None);
    let mut roots = BitSet::new(t.arena_len());
    roots.insert(t.root().index());
    propagate_selection(p, t, &sub, roots).iter().map(|i| NodeId(i as u32)).collect()
}

/// Evaluates `P^w(t)`: the set of output nodes over all **weak** embeddings.
pub fn evaluate_weak(p: &Pattern, t: &Tree) -> Vec<NodeId> {
    let sub = sub_match_sets(p, t, None);
    let roots = sub[p.root().index()].clone();
    propagate_selection(p, t, &sub, roots).iter().map(|i| NodeId(i as u32)).collect()
}

/// Evaluates `p` on the subtrees `t↓n` for every anchor `n`, i.e. the union
/// `⋃_n p(t↓n)` with node identities preserved. This is the *virtual* view
/// evaluation used by `xpv-engine`: applying a rewriting to a materialized
/// view result without copying subtrees. A strong embedding into `t↓n` is
/// exactly an embedding of `p` into `t` with the root mapped to `n` (all
/// images stay inside the subtree), so one sub-match table serves all
/// anchors.
pub fn evaluate_anchored(p: &Pattern, t: &Tree, anchors: &[NodeId]) -> Vec<NodeId> {
    let sub = sub_match_sets(p, t, None);
    let mut roots = BitSet::new(t.arena_len());
    for &n in anchors {
        // Tombstoned anchors (an answer set maintained across edits may
        // briefly carry them) contribute nothing.
        if t.is_alive(n) {
            roots.insert(n.index());
        }
    }
    propagate_selection(p, t, &sub, roots).iter().map(|i| NodeId(i as u32)).collect()
}

/// Does some embedding of `p` into `t` produce output `o`?
pub fn embeds_with_output(p: &Pattern, t: &Tree, o: NodeId) -> bool {
    let sub = sub_match_sets(p, t, Some((p.output(), o)));
    let mut roots = BitSet::new(t.arena_len());
    roots.insert(t.root().index());
    !propagate_selection(p, t, &sub, roots).is_empty()
}

/// Does some **weak** embedding of `p` into `t` produce output `o`?
pub fn weakly_embeds_with_output(p: &Pattern, t: &Tree, o: NodeId) -> bool {
    let sub = sub_match_sets(p, t, Some((p.output(), o)));
    let roots = sub[p.root().index()].clone();
    !propagate_selection(p, t, &sub, roots).is_empty()
}

/// Extracts one embedding with the pattern root mapped to `anchor`, if the
/// sub-match table admits it. The table proves extendability, so the greedy
/// construction below never backtracks.
fn extract_from(p: &Pattern, t: &Tree, sub: &[BitSet], anchor: NodeId) -> Option<Embedding> {
    if !sub[p.root().index()].contains(anchor.index()) {
        return None;
    }
    let mut map: Vec<NodeId> = vec![NodeId(0); p.len()];
    map[p.root().index()] = anchor;
    let mut stack = vec![p.root()];
    while let Some(q) = stack.pop() {
        let at = map[q.index()];
        for &c in p.children(q) {
            let witness = match p.axis(c) {
                Axis::Child => {
                    t.children(at).iter().copied().find(|m| sub[c.index()].contains(m.index()))
                }
                Axis::Descendant => {
                    let mut found = None;
                    t.for_each_descendant(at, |m| {
                        if found.is_none() && m != at && sub[c.index()].contains(m.index()) {
                            found = Some(m);
                        }
                    });
                    found
                }
            };
            map[c.index()] = witness.expect("sub-match table guarantees a witness");
            stack.push(c);
        }
    }
    Some(map)
}

/// Finds one embedding of `p` into `t` (root mapped to root), if any.
pub fn find_embedding(p: &Pattern, t: &Tree) -> Option<Embedding> {
    let sub = sub_match_sets(p, t, None);
    extract_from(p, t, &sub, t.root())
}

/// Finds one weak embedding of `p` into `t`, if any.
pub fn find_weak_embedding(p: &Pattern, t: &Tree) -> Option<Embedding> {
    let sub = sub_match_sets(p, t, None);
    let anchor = sub[p.root().index()].iter().next()?;
    extract_from(p, t, &sub, NodeId(anchor as u32))
}

/// Verifies that `e` is a (strong or weak) embedding of `p` into `t`.
/// Used by tests as an independent oracle for the constructive paths.
pub fn check_embedding(p: &Pattern, t: &Tree, e: &Embedding, require_root: bool) -> bool {
    if e.len() != p.len() {
        return false;
    }
    if require_root && e[p.root().index()] != t.root() {
        return false;
    }
    for q in p.node_ids() {
        let n = e[q.index()];
        if !t.is_alive(n) || !p.test(q).matches(t.label(n)) {
            return false;
        }
        if let Some(parent) = p.parent(q) {
            let pn = e[parent.index()];
            match p.axis(q) {
                Axis::Child => {
                    if t.parent(n) != Some(pn) {
                        return false;
                    }
                }
                Axis::Descendant => {
                    if !t.is_proper_ancestor(pn, n) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Enumerates embeddings (up to `cap`) by exhaustive backtracking over the
/// sub-match table. Exponential in the worst case; intended for tests and
/// small inputs.
pub fn enumerate_embeddings(
    p: &Pattern,
    t: &Tree,
    require_root: bool,
    cap: usize,
) -> Vec<Embedding> {
    let sub = sub_match_sets(p, t, None);
    let mut out = Vec::new();
    let anchors: Vec<NodeId> = if require_root {
        vec![t.root()]
    } else {
        sub[p.root().index()].iter().map(|i| NodeId(i as u32)).collect()
    };

    // Depth-first assignment in arena order (parents first).
    fn rec(
        p: &Pattern,
        t: &Tree,
        sub: &[BitSet],
        map: &mut Vec<NodeId>,
        next: usize,
        out: &mut Vec<Embedding>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if next == p.len() {
            out.push(map.clone());
            return;
        }
        let q = PatId(next as u32);
        let parent = p.parent(q).expect("non-root nodes have parents in arena order");
        let at = map[parent.index()];
        let candidates: Vec<NodeId> = match p.axis(q) {
            Axis::Child => t.children(at).to_vec(),
            Axis::Descendant => t.descendants_inclusive(at).into_iter().skip(1).collect(),
        };
        for m in candidates {
            if sub[q.index()].contains(m.index()) {
                map[next] = m;
                rec(p, t, sub, map, next + 1, out, cap);
                if out.len() >= cap {
                    return;
                }
            }
        }
    }

    for anchor in anchors {
        if !sub[p.root().index()].contains(anchor.index()) {
            continue;
        }
        let mut map = vec![NodeId(0); p.len()];
        map[0] = anchor;
        rec(p, t, &sub, &mut map, 1, &mut out, cap);
        if out.len() >= cap {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_model::TreeBuilder;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        // a
        // ├── b
        // │   └── c
        // │       └── d
        // └── c
        //     └── d
        TreeBuilder::root("a", |t| {
            t.child("b", |t| {
                t.child("c", |t| {
                    t.leaf("d");
                });
            });
            t.child("c", |t| {
                t.leaf("d");
            });
        })
    }

    fn labels_of(t: &Tree, nodes: &[NodeId]) -> Vec<String> {
        let mut v: Vec<String> = nodes.iter().map(|&n| t.label(n).name().to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn evaluate_child_path() {
        let t = doc();
        let r = evaluate(&pat("a/c/d"), &t);
        assert_eq!(r.len(), 1);
        assert_eq!(t.depth(r[0]), 2);
    }

    #[test]
    fn evaluate_descendant_path() {
        let t = doc();
        let r = evaluate(&pat("a//d"), &t);
        assert_eq!(r.len(), 2);
        assert_eq!(labels_of(&t, &r), vec!["d", "d"]);
    }

    #[test]
    fn evaluate_wildcard() {
        let t = doc();
        let r = evaluate(&pat("a/*"), &t);
        assert_eq!(labels_of(&t, &r), vec!["b", "c"]);
    }

    #[test]
    fn evaluate_branch_filters() {
        let t = doc();
        // Nodes labeled c (anywhere) having a d child: both c's qualify.
        assert_eq!(evaluate(&pat("a//c[d]"), &t).len(), 2);
        // c nodes that are children of b.
        assert_eq!(evaluate(&pat("a/b/c[d]"), &t).len(), 1);
        // Branch that never matches.
        assert_eq!(evaluate(&pat("a//c[x]"), &t).len(), 0);
    }

    #[test]
    fn evaluate_root_mismatch_is_empty() {
        let t = doc();
        assert!(evaluate(&pat("b//d"), &t).is_empty());
    }

    #[test]
    fn weak_evaluation_ignores_root() {
        let t = doc();
        assert!(evaluate(&pat("b/c"), &t).is_empty());
        let w = evaluate_weak(&pat("b/c"), &t);
        assert_eq!(w.len(), 1);
        assert_eq!(labels_of(&t, &w), vec!["c"]);
        // Weak always contains strong.
        let s = evaluate(&pat("a//d"), &t);
        let w = evaluate_weak(&pat("a//d"), &t);
        assert!(s.iter().all(|n| w.contains(n)));
    }

    #[test]
    fn descendant_is_proper() {
        // A node is not its own descendant: a//a on a single-a tree is empty.
        let t = TreeBuilder::root("a", |_| {});
        assert!(evaluate(&pat("a//a"), &t).is_empty());
        // But nested a's match.
        let t2 = TreeBuilder::root("a", |b| {
            b.leaf("a");
        });
        assert_eq!(evaluate(&pat("a//a"), &t2).len(), 1);
    }

    #[test]
    fn output_in_the_middle() {
        let t = doc();
        // Query "c nodes that have a d child", output c, written a//c[d].
        let p = pat("a//c[d]");
        let r = evaluate(&p, &t);
        assert_eq!(labels_of(&t, &r), vec!["c", "c"]);
    }

    #[test]
    fn embeds_with_output_pins() {
        let t = doc();
        let p = pat("a//d");
        let outs = evaluate(&p, &t);
        for o in &outs {
            assert!(embeds_with_output(&p, &t, *o));
        }
        // The root is never an output of this pattern.
        assert!(!embeds_with_output(&p, &t, t.root()));
    }

    #[test]
    fn find_embedding_is_valid() {
        let t = doc();
        for q in ["a//d", "a/*/c", "a[b]//d", "a[b[c]][c/d]//d"] {
            let p = pat(q);
            let e = find_embedding(&p, &t).unwrap_or_else(|| panic!("{q} should embed"));
            assert!(check_embedding(&p, &t, &e, true), "{q}");
        }
        assert!(find_embedding(&pat("a/x"), &t).is_none());
    }

    #[test]
    fn find_weak_embedding_is_valid() {
        let t = doc();
        let p = pat("c/d");
        let e = find_weak_embedding(&p, &t).expect("weakly embeds");
        assert!(check_embedding(&p, &t, &e, false));
        assert!(!check_embedding(&p, &t, &e, true));
    }

    #[test]
    fn enumerate_matches_evaluate() {
        let t = doc();
        for q in ["a//d", "a/*", "a//c[d]", "a//*"] {
            let p = pat(q);
            let embs = enumerate_embeddings(&p, &t, true, 10_000);
            let mut outs: Vec<NodeId> = embs.iter().map(|e| e[p.output().index()]).collect();
            outs.sort();
            outs.dedup();
            let mut eval = evaluate(&p, &t);
            eval.sort();
            assert_eq!(outs, eval, "{q}");
            for e in &embs {
                assert!(check_embedding(&p, &t, e, true), "{q}");
            }
        }
    }

    #[test]
    fn multi_branch_consistency() {
        // A pattern with two branches that can only be satisfied by different
        // children — embeddings need not be injective but must satisfy both.
        let t = TreeBuilder::root("r", |b| {
            b.child("x", |b| {
                b.leaf("p");
            });
            b.child("x", |b| {
                b.leaf("q");
            });
        });
        // r/x[p]: only the first x.
        assert_eq!(evaluate(&pat("r/x[p]"), &t).len(), 1);
        // r[x/p]/x[q]: root needs an x/p somewhere (yes) and output x with q.
        let r = evaluate(&pat("r[x/p]/x[q]"), &t);
        assert_eq!(r.len(), 1);
        assert_eq!(labels_of(&t, &r), vec!["x"]);
        // r/x[p][q]: no single x has both.
        assert!(evaluate(&pat("r/x[p][q]"), &t).is_empty());
    }

    #[test]
    fn deep_star_spine() {
        let t = doc();
        assert_eq!(evaluate(&pat("*/*/*"), &t).len(), 2);
        assert_eq!(evaluate(&pat("*//*"), &t).len(), 5); // every non-root node
    }

    #[test]
    fn anchored_evaluation_unions_subtree_results() {
        let t = doc();
        // Anchors: both c nodes. Pattern c/d anchored there finds both d's.
        let cs = evaluate(&pat("a//c"), &t);
        assert_eq!(cs.len(), 2);
        let ds = evaluate_anchored(&pat("c/d"), &t, &cs);
        assert_eq!(ds.len(), 2);
        // Equivalent to evaluating the composition a//c/d directly.
        assert_eq!(ds, evaluate(&pat("a//c/d"), &t));
        // Empty anchor set yields empty result.
        assert!(evaluate_anchored(&pat("c/d"), &t, &[]).is_empty());
        // Anchors where the pattern root does not match contribute nothing.
        let bs = evaluate(&pat("a/b"), &t);
        assert!(evaluate_anchored(&pat("c/d"), &t, &bs).is_empty());
    }

    #[test]
    fn anchored_evaluation_stays_inside_subtrees() {
        // A pattern anchored at a node must not see siblings outside the
        // subtree: anchor at b, pattern b//d may only reach b's own d.
        let t = doc();
        let b = t.children(t.root())[0];
        assert_eq!(t.label(b).name(), "b");
        let r = evaluate_anchored(&pat("b//d"), &t, &[b]);
        assert_eq!(r.len(), 1);
        assert!(t.is_proper_ancestor(b, r[0]));
    }

    #[test]
    fn weak_output_pinning() {
        let t = doc();
        let p = pat("c/d");
        let outs = evaluate_weak(&p, &t);
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert!(weakly_embeds_with_output(&p, &t, *o));
        }
        assert!(!weakly_embeds_with_output(&p, &t, t.root()));
    }

    #[test]
    fn single_node_patterns() {
        let t = doc();
        // Root label matches.
        assert_eq!(evaluate(&pat("a"), &t), vec![t.root()]);
        assert_eq!(evaluate(&pat("*"), &t), vec![t.root()]);
        assert!(evaluate(&pat("b"), &t).is_empty());
        // Weak single-node: every node with that label.
        assert_eq!(evaluate_weak(&pat("d"), &t).len(), 2);
        assert_eq!(evaluate_weak(&pat("*"), &t).len(), t.len());
    }
}
