//! The memoizing, concurrency-safe containment oracle.
//!
//! Every layer of the rewriting pipeline — candidate tests, completeness
//! certificates, the brute-force search, multi-view ranking, the `ViewCache`
//! — bottoms out in the coNP canonical-model containment test of Section 2.2.
//! Those call sites overlap heavily: a single `RewritePlanner::decide` tests
//! both natural candidates against the *same* query, the brute force
//! re-derives composition prefixes thousands of times, and a cache serving
//! repeated traffic re-decides identical `(P, V)` pairs on every arrival.
//!
//! [`ContainmentOracle`] makes that sharing explicit. It interns patterns
//! into [`PatternKey`]s (structural identity, sibling order ignored) and
//! keeps a **two-level memo**:
//!
//! 1. **homomorphism witnesses** — the PTIME fast path, keyed by
//!    `(q, p, mode)`; a hit skips the matcher entirely;
//! 2. **full verdicts** — the containment answer after the canonical-model
//!    loop, keyed by `(p1, p2, weak)`; a hit skips the coNP test entirely.
//!
//! ## Concurrency
//!
//! The oracle is split into an **immutable decision core** (the containment
//! options plus the staged decision procedure, which is pure) and a **sharded
//! memo store**: both memo levels are partitioned into `N` lock shards keyed
//! by a mix of the interned pattern keys, the interner sits behind a
//! `RwLock` with a read-locked fast path for already-seen patterns, and every
//! counter in [`OracleStats`] is an atomic. As a result `contained`,
//! `hom_exists` and friends take **`&self`**: any number of worker threads
//! can decide through one shared oracle, memo hits proceed under shared read
//! locks, and only a genuinely new verdict briefly write-locks its shard.
//! Verdicts are deterministic, so racing threads that compute the same entry
//! insert the same value — the memo never changes an answer, it only skips
//! work.
//!
//! The free functions [`contained`](crate::contained) /
//! [`equivalent`](crate::equivalent) / the weak variants are thin wrappers
//! that run a fresh oracle per call, so existing call sites keep their exact
//! behavior; long-lived components hold an oracle (usually inside an
//! `xpv_core::PlanningSession`) and route every decision through it.
//!
//! For ablation experiments the memo can be disabled
//! ([`ContainmentOracle::set_memo_enabled`]): the oracle then recomputes
//! every verdict while still counting the work, which is how the throughput
//! bench quantifies what memoization buys.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use xpv_pattern::{Pattern, PatternInterner, PatternKey};

use crate::canonical::expansion_bound;
use crate::contain::{canonical_loop, ContainmentOptions, ContainmentOutcome};
use crate::hom::{homomorphism_exists, HomMode};

/// Default number of memo lock shards (a power of two; see
/// [`ContainmentOracle::with_options_sharded`]).
pub const DEFAULT_ORACLE_SHARDS: usize = 16;

/// Counters describing the oracle's lifetime work (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Containment questions asked (strong + weak).
    pub queries: u64,
    /// Questions answered from the verdict memo.
    pub verdict_memo_hits: u64,
    /// Questions that had to be computed.
    pub verdict_memo_misses: u64,
    /// Homomorphism questions asked (fast path + callers).
    pub hom_queries: u64,
    /// Homomorphism questions answered from the hom memo.
    pub hom_memo_hits: u64,
    /// Questions settled by the homomorphism fast path.
    pub hom_fast_path_hits: u64,
    /// Canonical-model loops actually run (the coNP work).
    pub canonical_runs: u64,
    /// Canonical models enumerated across all loops.
    pub models_checked: u64,
}

impl OracleStats {
    /// Component-wise difference (`self - earlier`); all counters are
    /// monotone, so this measures the work between two snapshots.
    ///
    /// Uses saturating subtraction: snapshots taken while *other* threads
    /// are mid-decision (or across a [`ContainmentOracle::reset_stats`]) can
    /// observe counters out of lock-step, and a delta must never panic in
    /// that case — it degrades to a floor of zero per counter.
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            queries: self.queries.saturating_sub(earlier.queries),
            verdict_memo_hits: self.verdict_memo_hits.saturating_sub(earlier.verdict_memo_hits),
            verdict_memo_misses: self
                .verdict_memo_misses
                .saturating_sub(earlier.verdict_memo_misses),
            hom_queries: self.hom_queries.saturating_sub(earlier.hom_queries),
            hom_memo_hits: self.hom_memo_hits.saturating_sub(earlier.hom_memo_hits),
            hom_fast_path_hits: self.hom_fast_path_hits.saturating_sub(earlier.hom_fast_path_hits),
            canonical_runs: self.canonical_runs.saturating_sub(earlier.canonical_runs),
            models_checked: self.models_checked.saturating_sub(earlier.models_checked),
        }
    }
}

impl OracleStats {
    /// The canonical counter enumeration: one `(name, value)` pair per
    /// field, in declaration order. The observability registry exposes
    /// these under `xpv_oracle_*`, and [`OracleStats`]'s `Display` renders
    /// the same list — one naming authority, so the rendered line and the
    /// exposition can never drift (see the `xpv-obs` crate docs).
    pub fn visit(&self, f: &mut dyn FnMut(&'static str, u64)) {
        f("queries", self.queries);
        f("verdict_memo_hits", self.verdict_memo_hits);
        f("verdict_memo_misses", self.verdict_memo_misses);
        f("hom_queries", self.hom_queries);
        f("hom_memo_hits", self.hom_memo_hits);
        f("hom_fast_path_hits", self.hom_fast_path_hits);
        f("canonical_runs", self.canonical_runs);
        f("models_checked", self.models_checked);
    }
}

impl fmt::Display for OracleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        xpv_obs::write_kv_line(f, |emit| self.visit(emit))
    }
}

/// The atomic backing store for [`OracleStats`] (one counter per field).
#[derive(Debug, Default)]
struct AtomicOracleStats {
    queries: AtomicU64,
    verdict_memo_hits: AtomicU64,
    verdict_memo_misses: AtomicU64,
    hom_queries: AtomicU64,
    hom_memo_hits: AtomicU64,
    hom_fast_path_hits: AtomicU64,
    canonical_runs: AtomicU64,
    models_checked: AtomicU64,
}

impl AtomicOracleStats {
    fn snapshot(&self) -> OracleStats {
        OracleStats {
            queries: self.queries.load(Ordering::Relaxed),
            verdict_memo_hits: self.verdict_memo_hits.load(Ordering::Relaxed),
            verdict_memo_misses: self.verdict_memo_misses.load(Ordering::Relaxed),
            hom_queries: self.hom_queries.load(Ordering::Relaxed),
            hom_memo_hits: self.hom_memo_hits.load(Ordering::Relaxed),
            hom_fast_path_hits: self.hom_fast_path_hits.load(Ordering::Relaxed),
            canonical_runs: self.canonical_runs.load(Ordering::Relaxed),
            models_checked: self.models_checked.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.verdict_memo_hits.store(0, Ordering::Relaxed);
        self.verdict_memo_misses.store(0, Ordering::Relaxed);
        self.hom_queries.store(0, Ordering::Relaxed);
        self.hom_memo_hits.store(0, Ordering::Relaxed);
        self.hom_fast_path_hits.store(0, Ordering::Relaxed);
        self.canonical_runs.store(0, Ordering::Relaxed);
        self.models_checked.store(0, Ordering::Relaxed);
    }
}

#[inline]
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// One lock shard of the two-level memo.
#[derive(Debug, Default)]
struct MemoShard {
    /// Level-1 memo: homomorphism existence, keyed `(q, p, mode)`.
    hom: RwLock<HashMap<(PatternKey, PatternKey, HomMode), bool>>,
    /// Level-2 memo: full containment verdicts, keyed `(p1, p2, weak)`.
    verdict: RwLock<HashMap<(PatternKey, PatternKey, bool), bool>>,
}

/// Mixes a pair of interned keys into a shard index (splitmix64 avalanche,
/// same mixer as `Pattern::fingerprint`).
#[inline]
fn shard_of(k1: PatternKey, k2: PatternKey, nshards: usize) -> usize {
    let mut h = ((k1.index() as u64) << 32) ^ (k2.index() as u64) ^ 0x9E37_79B9_7F4A_7C15;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    (h ^ (h >> 33)) as usize & (nshards - 1)
}

/// A memoizing decision service for containment and equivalence, shareable
/// across threads (`&self` throughout — see the module docs for the
/// core/shard split).
///
/// ```
/// use xpv_pattern::parse_xpath;
/// use xpv_semantics::ContainmentOracle;
///
/// let p = parse_xpath("a/b/c").unwrap();
/// let q = parse_xpath("a//c").unwrap();
/// let oracle = ContainmentOracle::new();
/// assert!(oracle.contained(&p, &q));
/// assert!(oracle.contained(&p, &q)); // memo hit: no recomputation
/// assert_eq!(oracle.stats().verdict_memo_hits, 1);
/// ```
#[derive(Debug)]
pub struct ContainmentOracle {
    interner: RwLock<PatternInterner>,
    opts: ContainmentOptions,
    memo_enabled: AtomicBool,
    shards: Box<[MemoShard]>,
    stats: AtomicOracleStats,
}

impl Default for ContainmentOracle {
    fn default() -> ContainmentOracle {
        ContainmentOracle::new()
    }
}

impl ContainmentOracle {
    /// An oracle with default [`ContainmentOptions`] and memoization on.
    pub fn new() -> ContainmentOracle {
        Self::with_options(ContainmentOptions::default())
    }

    /// An oracle with custom containment options and the default shard
    /// count.
    pub fn with_options(opts: ContainmentOptions) -> ContainmentOracle {
        Self::with_options_sharded(opts, DEFAULT_ORACLE_SHARDS)
    }

    /// An oracle with custom options and an explicit memo shard count
    /// (rounded up to a power of two, minimum 1). More shards lower write
    /// contention when many threads insert fresh verdicts concurrently;
    /// single-threaded callers can use 1.
    pub fn with_options_sharded(opts: ContainmentOptions, shards: usize) -> ContainmentOracle {
        let n = shards.max(1).next_power_of_two();
        ContainmentOracle {
            interner: RwLock::new(PatternInterner::new()),
            opts,
            memo_enabled: AtomicBool::new(true),
            shards: (0..n).map(|_| MemoShard::default()).collect(),
            stats: AtomicOracleStats::default(),
        }
    }

    /// Number of memo lock shards.
    pub fn memo_shards(&self) -> usize {
        self.shards.len()
    }

    /// Enables or disables the memo (ablation knob). Disabling also clears
    /// both levels so a later re-enable starts cold.
    pub fn set_memo_enabled(&self, enabled: bool) {
        self.memo_enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            for shard in self.shards.iter() {
                shard.hom.write().expect("oracle memo poisoned").clear();
                shard.verdict.write().expect("oracle memo poisoned").clear();
            }
        }
    }

    /// Whether memoization is active.
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled.load(Ordering::Relaxed)
    }

    /// The options threaded into every test.
    pub fn options(&self) -> &ContainmentOptions {
        &self.opts
    }

    /// Lifetime counters (a relaxed snapshot; exact when no other thread is
    /// mid-decision).
    pub fn stats(&self) -> OracleStats {
        self.stats.snapshot()
    }

    /// Resets the counters (the memo tables are kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Number of distinct patterns interned so far.
    pub fn interned_patterns(&self) -> usize {
        self.interner.read().expect("oracle interner poisoned").len()
    }

    /// Interns `p`, returning its structural key.
    pub fn intern(&self, p: &Pattern) -> PatternKey {
        self.intern_fingerprinted(p).0
    }

    /// Interns `p`, returning its structural key together with the 64-bit
    /// structural fingerprint (callers that shard by query — the
    /// `ShardedViewCache` — reuse the hash instead of recomputing it).
    pub fn intern_fingerprinted(&self, p: &Pattern) -> (PatternKey, u64) {
        let fp = p.fingerprint();
        // Fast path: already interned (shared read lock).
        if let Some(key) =
            self.interner.read().expect("oracle interner poisoned").lookup_prehashed(fp, p)
        {
            return (key, fp);
        }
        let key = self.interner.write().expect("oracle interner poisoned").intern_prehashed(fp, p);
        (key, fp)
    }

    /// A clone of the representative pattern of an interned key. (Returns an
    /// owned pattern rather than a reference because the interner lives
    /// behind the concurrency lock.)
    ///
    /// # Panics
    ///
    /// Panics if `key` comes from a different oracle.
    pub fn resolve(&self, key: PatternKey) -> Pattern {
        self.interner.read().expect("oracle interner poisoned").resolve(key).clone()
    }

    /// Memoized homomorphism existence `q → p` under `mode`.
    pub fn hom_exists(&self, q: &Pattern, p: &Pattern, mode: HomMode) -> bool {
        let kq = self.intern(q);
        let kp = self.intern(p);
        self.hom_exists_inner(kq, kp, mode, q, p)
    }

    fn hom_exists_inner(
        &self,
        kq: PatternKey,
        kp: PatternKey,
        mode: HomMode,
        q: &Pattern,
        p: &Pattern,
    ) -> bool {
        bump(&self.stats.hom_queries);
        let memo = self.memo_enabled();
        let shard = &self.shards[shard_of(kq, kp, self.shards.len())];
        if memo {
            if let Some(&hit) = shard.hom.read().expect("oracle memo poisoned").get(&(kq, kp, mode))
            {
                bump(&self.stats.hom_memo_hits);
                return hit;
            }
        }
        let holds = homomorphism_exists(q, p, mode);
        if memo {
            shard.hom.write().expect("oracle memo poisoned").insert((kq, kp, mode), holds);
        }
        holds
    }

    /// Memoized `p1 ⊑ p2`.
    pub fn contained(&self, p1: &Pattern, p2: &Pattern) -> bool {
        self.decide(p1, p2, false)
    }

    /// Memoized weak containment `p1 ⊑w p2`.
    pub fn weakly_contained(&self, p1: &Pattern, p2: &Pattern) -> bool {
        self.decide(p1, p2, true)
    }

    /// Memoized equivalence (two-sided containment; each side memoizes
    /// independently, so `equivalent(p, q)` after `contained(p, q)` only
    /// pays for the missing direction).
    pub fn equivalent(&self, p1: &Pattern, p2: &Pattern) -> bool {
        self.contained(p1, p2) && self.contained(p2, p1)
    }

    /// Memoized weak equivalence.
    pub fn weakly_equivalent(&self, p1: &Pattern, p2: &Pattern) -> bool {
        self.weakly_contained(p1, p2) && self.weakly_contained(p2, p1)
    }

    fn decide(&self, p1: &Pattern, p2: &Pattern, weak: bool) -> bool {
        let k1 = self.intern(p1);
        let k2 = self.intern(p2);
        self.decide_keys(k1, k2, p1, p2, weak)
    }

    fn decide_keys(
        &self,
        k1: PatternKey,
        k2: PatternKey,
        p1: &Pattern,
        p2: &Pattern,
        weak: bool,
    ) -> bool {
        bump(&self.stats.queries);
        let memo = self.memo_enabled();
        let shard = &self.shards[shard_of(k1, k2, self.shards.len())];
        if memo {
            if let Some(&verdict) =
                shard.verdict.read().expect("oracle memo poisoned").get(&(k1, k2, weak))
            {
                bump(&self.stats.verdict_memo_hits);
                return verdict;
            }
        }
        bump(&self.stats.verdict_memo_misses);

        // Stage 1: the PTIME homomorphism witness (sound for the full
        // fragment), itself memoized at level 1.
        let mode = if weak { HomMode::Free } else { HomMode::RootAnchored };
        let holds = if self.opts.hom_fast_path && self.hom_exists_inner(k2, k1, mode, p2, p1) {
            bump(&self.stats.hom_fast_path_hits);
            true
        } else {
            // Stage 2: the complete canonical-model loop (Section 2.2).
            bump(&self.stats.canonical_runs);
            let bound = self.opts.bound_override.unwrap_or_else(|| expansion_bound(p2));
            let mut outcome = ContainmentOutcome {
                holds: false,
                via_homomorphism: false,
                models_checked: 0,
                counter_model: None,
            };
            let holds = canonical_loop(p1, p2, bound, weak, &mut outcome);
            self.stats.models_checked.fetch_add(outcome.models_checked, Ordering::Relaxed);
            holds
        };

        if memo {
            shard.verdict.write().expect("oracle memo poisoned").insert((k1, k2, weak), holds);
        }
        holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn agrees_with_free_functions() {
        let pairs = [
            ("a/b/c", "a//c"),
            ("a//c", "a/b/c"),
            ("a[b][c]/d", "a[b]/d"),
            ("a/*//e", "a//*/e"),
            ("a[b]/*/e[d]", "a[b]//*/e[d]"),
        ];
        let oracle = ContainmentOracle::new();
        for (l, r) in pairs {
            let (p, q) = (pat(l), pat(r));
            assert_eq!(oracle.contained(&p, &q), crate::contain::contained(&p, &q), "{l} vs {r}");
            assert_eq!(
                oracle.weakly_contained(&p, &q),
                crate::contain::weakly_contained(&p, &q),
                "weak {l} vs {r}"
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let oracle = ContainmentOracle::new();
        let p = pat("a//c");
        let q = pat("a/b/c");
        assert!(!oracle.contained(&p, &q));
        let runs_before = oracle.stats().canonical_runs;
        assert!(runs_before >= 1, "first query must run the canonical loop");
        for _ in 0..5 {
            assert!(!oracle.contained(&p, &q));
        }
        let s = oracle.stats();
        assert_eq!(s.canonical_runs, runs_before, "memo hits must skip the loop");
        assert_eq!(s.verdict_memo_hits, 5);
    }

    #[test]
    fn sibling_reordered_patterns_share_memo_entries() {
        let oracle = ContainmentOracle::new();
        assert!(oracle.contained(&pat("a[b][c]/d"), &pat("a[b]/d")));
        let misses = oracle.stats().verdict_memo_misses;
        // The reordered isomorph interns to the same key → memo hit.
        assert!(oracle.contained(&pat("a[c][b]/d"), &pat("a[b]/d")));
        assert_eq!(oracle.stats().verdict_memo_misses, misses);
        assert_eq!(oracle.stats().verdict_memo_hits, 1);
    }

    #[test]
    fn disabled_memo_recomputes() {
        let oracle = ContainmentOracle::new();
        oracle.set_memo_enabled(false);
        let p = pat("a//c");
        let q = pat("a/b/c");
        assert!(!oracle.contained(&p, &q));
        assert!(!oracle.contained(&p, &q));
        let s = oracle.stats();
        assert_eq!(s.verdict_memo_hits, 0);
        assert_eq!(s.canonical_runs, 2);
    }

    #[test]
    fn equivalence_reuses_directional_verdicts() {
        let oracle = ContainmentOracle::new();
        let p = pat("a[b][b/c]/d");
        let q = pat("a[b/c]/d");
        assert!(oracle.contained(&p, &q));
        assert!(oracle.equivalent(&p, &q));
        // The equivalent() call reused the p ⊑ q verdict.
        assert!(oracle.stats().verdict_memo_hits >= 1);
    }

    #[test]
    fn stats_since_is_a_delta() {
        let oracle = ContainmentOracle::new();
        let before = oracle.stats();
        assert!(oracle.contained(&pat("a/b"), &pat("a/*")));
        let delta = oracle.stats().since(&before);
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.verdict_memo_misses, 1);
    }

    #[test]
    fn stats_since_saturates_instead_of_panicking() {
        let oracle = ContainmentOracle::new();
        assert!(oracle.contained(&pat("a/b"), &pat("a/*")));
        let later = oracle.stats();
        oracle.reset_stats();
        // `earlier` was taken before the reset: the delta floors at zero.
        let delta = oracle.stats().since(&later);
        assert_eq!(delta.queries, 0);
        assert_eq!(delta.canonical_runs, 0);
    }

    #[test]
    fn stats_display_mentions_every_headline_counter() {
        let oracle = ContainmentOracle::new();
        assert!(oracle.contained(&pat("a/b/c"), &pat("a//c")));
        let s = oracle.stats().to_string();
        assert!(s.contains("queries="), "got: {s}");
        assert!(s.contains("canonical_runs="), "got: {s}");
        // Display renders the same enumeration `visit` exposes: every
        // canonical counter name appears in the line.
        oracle.stats().visit(&mut |name, _| {
            assert!(s.contains(&format!("{name}=")), "{name} missing from: {s}");
        });
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let oracle = ContainmentOracle::with_options_sharded(ContainmentOptions::default(), 5);
        assert_eq!(oracle.memo_shards(), 8);
        let one = ContainmentOracle::with_options_sharded(ContainmentOptions::default(), 0);
        assert_eq!(one.memo_shards(), 1);
        assert!(one.contained(&pat("a/b/c"), &pat("a//c")));
    }

    #[test]
    fn concurrent_threads_share_one_oracle() {
        let oracle = ContainmentOracle::new();
        let pairs = [
            ("a/b/c", "a//c"),
            ("a//c", "a/b/c"),
            ("a[b][c]/d", "a[b]/d"),
            ("a/*//e", "a//*/e"),
            ("a[b]/*/e[d]", "a[b]//*/e[d]"),
            ("a/b", "a/*"),
        ];
        let expected: Vec<bool> =
            pairs.iter().map(|(l, r)| crate::contain::contained(&pat(l), &pat(r))).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for ((l, r), want) in pairs.iter().zip(&expected) {
                        for _ in 0..10 {
                            assert_eq!(oracle.contained(&pat(l), &pat(r)), *want, "{l} vs {r}");
                        }
                    }
                });
            }
        });
        let s = oracle.stats();
        assert_eq!(s.queries, 4 * 10 * pairs.len() as u64);
        assert!(s.verdict_memo_hits >= s.queries - (pairs.len() as u64 * 4));
        assert_eq!(oracle.interned_patterns(), 10, "six pairs over ten distinct patterns");
    }
}
