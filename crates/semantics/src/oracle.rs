//! The memoizing containment oracle.
//!
//! Every layer of the rewriting pipeline — candidate tests, completeness
//! certificates, the brute-force search, multi-view ranking, the `ViewCache`
//! — bottoms out in the coNP canonical-model containment test of Section 2.2.
//! Those call sites overlap heavily: a single `RewritePlanner::decide` tests
//! both natural candidates against the *same* query, the brute force
//! re-derives composition prefixes thousands of times, and a cache serving
//! repeated traffic re-decides identical `(P, V)` pairs on every arrival.
//!
//! [`ContainmentOracle`] makes that sharing explicit. It interns patterns
//! into [`PatternKey`]s (structural identity, sibling order ignored) and
//! keeps a **two-level memo**:
//!
//! 1. **homomorphism witnesses** — the PTIME fast path, keyed by
//!    `(q, p, mode)`; a hit skips the matcher entirely;
//! 2. **full verdicts** — the containment answer after the canonical-model
//!    loop, keyed by `(p1, p2, weak)`; a hit skips the coNP test entirely.
//!
//! The free functions [`contained`](crate::contained) /
//! [`equivalent`](crate::equivalent) / the weak variants are thin wrappers
//! that run a fresh oracle per call, so existing call sites keep their exact
//! behavior; long-lived components hold an oracle (usually inside an
//! `xpv_core::PlanningSession`) and route every decision through it.
//!
//! For ablation experiments the memo can be disabled
//! ([`ContainmentOracle::set_memo_enabled`]): the oracle then recomputes
//! every verdict while still counting the work, which is how the throughput
//! bench quantifies what memoization buys.

use std::collections::HashMap;

use xpv_pattern::{Pattern, PatternInterner, PatternKey};

use crate::canonical::expansion_bound;
use crate::contain::{canonical_loop, ContainmentOptions, ContainmentOutcome};
use crate::hom::{homomorphism_exists, HomMode};

/// Counters describing the oracle's lifetime work (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Containment questions asked (strong + weak).
    pub queries: u64,
    /// Questions answered from the verdict memo.
    pub verdict_memo_hits: u64,
    /// Questions that had to be computed.
    pub verdict_memo_misses: u64,
    /// Homomorphism questions asked (fast path + callers).
    pub hom_queries: u64,
    /// Homomorphism questions answered from the hom memo.
    pub hom_memo_hits: u64,
    /// Questions settled by the homomorphism fast path.
    pub hom_fast_path_hits: u64,
    /// Canonical-model loops actually run (the coNP work).
    pub canonical_runs: u64,
    /// Canonical models enumerated across all loops.
    pub models_checked: u64,
}

impl OracleStats {
    /// Component-wise difference (`self - earlier`); all counters are
    /// monotone, so this measures the work between two snapshots.
    pub fn since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            queries: self.queries - earlier.queries,
            verdict_memo_hits: self.verdict_memo_hits - earlier.verdict_memo_hits,
            verdict_memo_misses: self.verdict_memo_misses - earlier.verdict_memo_misses,
            hom_queries: self.hom_queries - earlier.hom_queries,
            hom_memo_hits: self.hom_memo_hits - earlier.hom_memo_hits,
            hom_fast_path_hits: self.hom_fast_path_hits - earlier.hom_fast_path_hits,
            canonical_runs: self.canonical_runs - earlier.canonical_runs,
            models_checked: self.models_checked - earlier.models_checked,
        }
    }
}

/// A memoizing decision service for containment and equivalence.
///
/// ```
/// use xpv_pattern::parse_xpath;
/// use xpv_semantics::ContainmentOracle;
///
/// let p = parse_xpath("a/b/c").unwrap();
/// let q = parse_xpath("a//c").unwrap();
/// let mut oracle = ContainmentOracle::new();
/// assert!(oracle.contained(&p, &q));
/// assert!(oracle.contained(&p, &q)); // memo hit: no recomputation
/// assert_eq!(oracle.stats().verdict_memo_hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct ContainmentOracle {
    interner: PatternInterner,
    opts: ContainmentOptions,
    memo_enabled: bool,
    /// Level-1 memo: homomorphism existence, keyed `(q, p, mode)`.
    hom_memo: HashMap<(PatternKey, PatternKey, HomMode), bool>,
    /// Level-2 memo: full containment verdicts, keyed `(p1, p2, weak)`.
    verdict_memo: HashMap<(PatternKey, PatternKey, bool), bool>,
    stats: OracleStats,
}

impl ContainmentOracle {
    /// An oracle with default [`ContainmentOptions`] and memoization on.
    pub fn new() -> ContainmentOracle {
        Self::with_options(ContainmentOptions::default())
    }

    /// An oracle with custom containment options.
    pub fn with_options(opts: ContainmentOptions) -> ContainmentOracle {
        ContainmentOracle {
            interner: PatternInterner::new(),
            opts,
            memo_enabled: true,
            hom_memo: HashMap::new(),
            verdict_memo: HashMap::new(),
            stats: OracleStats::default(),
        }
    }

    /// Enables or disables the memo (ablation knob). Disabling also clears
    /// both levels so a later re-enable starts cold.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        self.memo_enabled = enabled;
        if !enabled {
            self.hom_memo.clear();
            self.verdict_memo.clear();
        }
    }

    /// Whether memoization is active.
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled
    }

    /// The options threaded into every test.
    pub fn options(&self) -> &ContainmentOptions {
        &self.opts
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Resets the counters (the memo tables are kept).
    pub fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }

    /// Number of distinct patterns interned so far.
    pub fn interned_patterns(&self) -> usize {
        self.interner.len()
    }

    /// Interns `p`, returning its structural key.
    pub fn intern(&mut self, p: &Pattern) -> PatternKey {
        self.interner.intern(p)
    }

    /// The representative pattern of an interned key.
    pub fn resolve(&self, key: PatternKey) -> &Pattern {
        self.interner.resolve(key)
    }

    /// Memoized homomorphism existence `q → p` under `mode`.
    pub fn hom_exists(&mut self, q: &Pattern, p: &Pattern, mode: HomMode) -> bool {
        let kq = self.intern(q);
        let kp = self.intern(p);
        self.hom_exists_inner(kq, kp, mode, q, p)
    }

    fn hom_exists_inner(
        &mut self,
        kq: PatternKey,
        kp: PatternKey,
        mode: HomMode,
        q: &Pattern,
        p: &Pattern,
    ) -> bool {
        self.stats.hom_queries += 1;
        if self.memo_enabled {
            if let Some(&hit) = self.hom_memo.get(&(kq, kp, mode)) {
                self.stats.hom_memo_hits += 1;
                return hit;
            }
        }
        let holds = homomorphism_exists(q, p, mode);
        if self.memo_enabled {
            self.hom_memo.insert((kq, kp, mode), holds);
        }
        holds
    }

    /// Memoized `p1 ⊑ p2`.
    pub fn contained(&mut self, p1: &Pattern, p2: &Pattern) -> bool {
        self.decide(p1, p2, false)
    }

    /// Memoized weak containment `p1 ⊑w p2`.
    pub fn weakly_contained(&mut self, p1: &Pattern, p2: &Pattern) -> bool {
        self.decide(p1, p2, true)
    }

    /// Memoized equivalence (two-sided containment; each side memoizes
    /// independently, so `equivalent(p, q)` after `contained(p, q)` only
    /// pays for the missing direction).
    pub fn equivalent(&mut self, p1: &Pattern, p2: &Pattern) -> bool {
        self.contained(p1, p2) && self.contained(p2, p1)
    }

    /// Memoized weak equivalence.
    pub fn weakly_equivalent(&mut self, p1: &Pattern, p2: &Pattern) -> bool {
        self.weakly_contained(p1, p2) && self.weakly_contained(p2, p1)
    }

    fn decide(&mut self, p1: &Pattern, p2: &Pattern, weak: bool) -> bool {
        let k1 = self.intern(p1);
        let k2 = self.intern(p2);
        self.decide_keys(k1, k2, p1, p2, weak)
    }

    fn decide_keys(
        &mut self,
        k1: PatternKey,
        k2: PatternKey,
        p1: &Pattern,
        p2: &Pattern,
        weak: bool,
    ) -> bool {
        self.stats.queries += 1;
        if self.memo_enabled {
            if let Some(&verdict) = self.verdict_memo.get(&(k1, k2, weak)) {
                self.stats.verdict_memo_hits += 1;
                return verdict;
            }
        }
        self.stats.verdict_memo_misses += 1;

        // Stage 1: the PTIME homomorphism witness (sound for the full
        // fragment), itself memoized at level 1.
        let mode = if weak { HomMode::Free } else { HomMode::RootAnchored };
        let holds = if self.opts.hom_fast_path && self.hom_exists_inner(k2, k1, mode, p2, p1) {
            self.stats.hom_fast_path_hits += 1;
            true
        } else {
            // Stage 2: the complete canonical-model loop (Section 2.2).
            self.stats.canonical_runs += 1;
            let bound = self.opts.bound_override.unwrap_or_else(|| expansion_bound(p2));
            let mut outcome = ContainmentOutcome {
                holds: false,
                via_homomorphism: false,
                models_checked: 0,
                counter_model: None,
            };
            let holds = canonical_loop(p1, p2, bound, weak, &mut outcome);
            self.stats.models_checked += outcome.models_checked;
            holds
        };

        if self.memo_enabled {
            self.verdict_memo.insert((k1, k2, weak), holds);
        }
        holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn agrees_with_free_functions() {
        let pairs = [
            ("a/b/c", "a//c"),
            ("a//c", "a/b/c"),
            ("a[b][c]/d", "a[b]/d"),
            ("a/*//e", "a//*/e"),
            ("a[b]/*/e[d]", "a[b]//*/e[d]"),
        ];
        let mut oracle = ContainmentOracle::new();
        for (l, r) in pairs {
            let (p, q) = (pat(l), pat(r));
            assert_eq!(oracle.contained(&p, &q), crate::contain::contained(&p, &q), "{l} vs {r}");
            assert_eq!(
                oracle.weakly_contained(&p, &q),
                crate::contain::weakly_contained(&p, &q),
                "weak {l} vs {r}"
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let mut oracle = ContainmentOracle::new();
        let p = pat("a//c");
        let q = pat("a/b/c");
        assert!(!oracle.contained(&p, &q));
        let runs_before = oracle.stats().canonical_runs;
        assert!(runs_before >= 1, "first query must run the canonical loop");
        for _ in 0..5 {
            assert!(!oracle.contained(&p, &q));
        }
        let s = oracle.stats();
        assert_eq!(s.canonical_runs, runs_before, "memo hits must skip the loop");
        assert_eq!(s.verdict_memo_hits, 5);
    }

    #[test]
    fn sibling_reordered_patterns_share_memo_entries() {
        let mut oracle = ContainmentOracle::new();
        assert!(oracle.contained(&pat("a[b][c]/d"), &pat("a[b]/d")));
        let misses = oracle.stats().verdict_memo_misses;
        // The reordered isomorph interns to the same key → memo hit.
        assert!(oracle.contained(&pat("a[c][b]/d"), &pat("a[b]/d")));
        assert_eq!(oracle.stats().verdict_memo_misses, misses);
        assert_eq!(oracle.stats().verdict_memo_hits, 1);
    }

    #[test]
    fn disabled_memo_recomputes() {
        let mut oracle = ContainmentOracle::new();
        oracle.set_memo_enabled(false);
        let p = pat("a//c");
        let q = pat("a/b/c");
        assert!(!oracle.contained(&p, &q));
        assert!(!oracle.contained(&p, &q));
        let s = oracle.stats();
        assert_eq!(s.verdict_memo_hits, 0);
        assert_eq!(s.canonical_runs, 2);
    }

    #[test]
    fn equivalence_reuses_directional_verdicts() {
        let mut oracle = ContainmentOracle::new();
        let p = pat("a[b][b/c]/d");
        let q = pat("a[b/c]/d");
        assert!(oracle.contained(&p, &q));
        assert!(oracle.equivalent(&p, &q));
        // The equivalent() call reused the p ⊑ q verdict.
        assert!(oracle.stats().verdict_memo_hits >= 1);
    }

    #[test]
    fn stats_since_is_a_delta() {
        let mut oracle = ContainmentOracle::new();
        let before = oracle.stats();
        assert!(oracle.contained(&pat("a/b"), &pat("a/*")));
        let delta = oracle.stats().since(&before);
        assert_eq!(delta.queries, 1);
        assert_eq!(delta.verdict_memo_misses, 1);
    }
}
