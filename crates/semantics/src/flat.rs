//! Word-parallel evaluation over [`FlatTree`] snapshots.
//!
//! The reference matcher ([`crate::embed::sub_match_sets`]) seeds every
//! pattern node's candidate set by scanning all tree nodes and calling
//! `test.matches`, and computes child-edge witnesses by walking per-node
//! child `Vec`s. This module re-derives the same bottom-up dynamic program
//! against the frozen struct-of-arrays form:
//!
//! * **seeding** reads the per-label posting bitset (wildcard = live mask)
//!   — a `memcpy`, not a scan; a label absent from the document empties the
//!   set without touching the tree;
//! * **`Child` witnesses** iterate only the set bits of the child's
//!   sub-match set and mark each bit's parent slot — `O(|set|)` instead of
//!   `O(n · avg-degree)`;
//! * **`Descendant` witnesses** climb from each set bit toward the root,
//!   stopping at the first already-marked ancestor — the classic union-of-
//!   ancestor-paths sweep, `O(n)` amortized per edge;
//! * **branch conjunctions** fold with word-level
//!   [`BitSet::intersect_with`].
//!
//! The reference path stays untouched as the oracle; the equivalence suite
//! (`tests/eval_flat_properties.rs`) checks the two agree bit-for-bit,
//! including on post-edit tombstoned trees.
//!
//! ## Scratch reuse and fused batches
//!
//! Every query over an `n`-slot document wants `|P|` arena-width bitsets.
//! [`EvalScratch`] recycles those buffers; the free-standing entry points
//! ([`evaluate_flat`], [`evaluate_anchored_flat`]) draw them from a
//! thread-local pool keyed by the current capacity, so steady-state serving
//! allocates nothing per query. [`BatchEval`] additionally shares completed
//! sub-match sets *across* the queries of one batch, keyed by the same
//! structural fingerprints the `PatternInterner` dedups with
//! ([`xpv_pattern::Pattern::fingerprint_at`]): two queries that contain the
//! same pattern subtree (`catalog//item[price]` as a branch of one query
//! and the spine of another) compute its table once per snapshot.

use std::cell::RefCell;
use std::collections::HashMap;

use xpv_model::{AnswerArena, AnswerRef, BitSet, FlatTree, NodeId, NO_PARENT};
use xpv_pattern::{Axis, NodeTest, PatId, Pattern};

/// A recycling pool of arena-width [`BitSet`] buffers.
///
/// All buffers share one capacity (the `arena_len` of the snapshot being
/// evaluated). With `reuse` disabled the pool degenerates to plain
/// allocation — the ablation arm of `xpv eval-bench`.
#[derive(Debug)]
pub struct EvalScratch {
    free: Vec<BitSet>,
    capacity: usize,
    reuse: bool,
}

/// Upper bound on pooled buffers; beyond this, returned buffers are dropped
/// (a pattern has at most a handful of nodes, so the bound is generous).
const MAX_POOLED: usize = 64;

impl EvalScratch {
    /// An empty pool for bitsets of capacity `capacity`.
    pub fn new(capacity: usize) -> EvalScratch {
        EvalScratch { free: Vec::new(), capacity, reuse: true }
    }

    /// Like [`EvalScratch::new`], with buffer recycling switched on or off.
    pub fn with_reuse(capacity: usize, reuse: bool) -> EvalScratch {
        EvalScratch { free: Vec::new(), capacity, reuse }
    }

    /// Takes an empty bitset from the pool (or allocates one).
    fn take(&mut self) -> BitSet {
        match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => BitSet::new(self.capacity),
        }
    }

    /// Returns a buffer to the pool.
    fn put(&mut self, b: BitSet) {
        if self.reuse && self.free.len() < MAX_POOLED && b.capacity() == self.capacity {
            self.free.push(b);
        }
    }

    /// Returns a whole sub-match table to the pool.
    fn put_all(&mut self, sets: Vec<BitSet>) {
        for b in sets {
            self.put(b);
        }
    }
}

thread_local! {
    /// Per-thread buffer pool for the free-standing entry points. Keyed by a
    /// single capacity: an edit batch grows `arena_len`, at which point the
    /// stale buffers are dropped and the pool refills at the new width.
    static TL_SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::new(0));
}

/// Runs `f` with this thread's pooled scratch, resized to `capacity`.
fn with_tl_scratch<R>(capacity: usize, f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    TL_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        if s.capacity != capacity {
            *s = EvalScratch::new(capacity);
        }
        f(&mut s)
    })
}

/// The flat-tree counterpart of [`crate::embed::sub_match_sets`]: for every
/// pattern node `p`, the set of live slots `n` such that the pattern
/// subtree rooted at `p` embeds with `p ↦ n`. Produces bit-identical tables
/// (the reference path only ever sets live bits, and so does this one).
pub fn sub_match_sets_flat(
    p: &Pattern,
    ft: &FlatTree,
    pin: Option<(PatId, NodeId)>,
) -> Vec<BitSet> {
    let mut scratch = EvalScratch::with_reuse(ft.arena_len(), false);
    sub_match_sets_into(p, ft, pin, &mut scratch)
}

fn sub_match_sets_into(
    p: &Pattern,
    ft: &FlatTree,
    pin: Option<(PatId, NodeId)>,
    scratch: &mut EvalScratch,
) -> Vec<BitSet> {
    let mut sub: Vec<BitSet> = (0..p.len()).map(|_| scratch.take()).collect();
    for pi in (0..p.len()).rev() {
        let pid = PatId(pi as u32);
        seed_node(p, ft, pid, &mut sub[pi]);
        fold_children(p, ft, pid, &mut sub, scratch);
        if let Some((pin_p, pin_n)) = pin {
            if pin_p == pid {
                let keep = sub[pi].contains(pin_n.index());
                sub[pi].clear();
                if keep {
                    sub[pi].insert(pin_n.index());
                }
            }
        }
    }
    sub
}

/// Seeds `out` with the candidate slots for pattern node `pid`: the label's
/// posting bitset, or the live mask for a wildcard.
fn seed_node(p: &Pattern, ft: &FlatTree, pid: PatId, out: &mut BitSet) {
    match p.test(pid) {
        NodeTest::Wildcard => out.copy_from(ft.live_mask()),
        NodeTest::Label(l) => match ft.posting(l) {
            Some(posting) => out.copy_from(posting),
            None => out.clear(),
        },
    }
}

/// The witness set of one pattern edge into `c`: the slots that have a
/// member of `sub_c` as a child (`Child` axis) or proper descendant
/// (`Descendant` axis). The caller returns the buffer to the scratch pool.
fn edge_witness(
    p: &Pattern,
    ft: &FlatTree,
    c: PatId,
    sub_c: &BitSet,
    scratch: &mut EvalScratch,
) -> BitSet {
    let mut ok = scratch.take();
    match p.axis(c) {
        Axis::Child => {
            // ok = { parent(m) : m ∈ sub_c } — visit only set bits.
            for m in sub_c.iter() {
                let par = ft.parent(m);
                if par != NO_PARENT {
                    ok.insert(par as usize);
                }
            }
        }
        Axis::Descendant => {
            // ok = proper ancestors of sub_c; each climb stops at the
            // first slot already marked by an earlier climb.
            for m in sub_c.iter() {
                let mut cur = ft.parent(m);
                while cur != NO_PARENT && !ok.contains(cur as usize) {
                    ok.insert(cur as usize);
                    cur = ft.parent(cur as usize);
                }
            }
        }
    }
    ok
}

/// Intersects `sub[pid]` with the witness set of each child edge. Children
/// occupy higher arena indices than their parent, so `sub[c]` is final.
fn fold_children(
    p: &Pattern,
    ft: &FlatTree,
    pid: PatId,
    sub: &mut [BitSet],
    scratch: &mut EvalScratch,
) {
    let pi = pid.index();
    for &c in p.children(pid) {
        if sub[pi].is_empty() {
            break;
        }
        let ok = edge_witness(p, ft, c, &sub[c.index()], scratch);
        sub[pi].intersect_with(&ok);
        scratch.put(ok);
    }
}

/// Flat-tree selection propagation: given the slots the pattern root may
/// map to, returns the exact output-slot set. Mirrors the reference
/// `propagate_selection`.
fn propagate_selection_flat(
    p: &Pattern,
    ft: &FlatTree,
    sub: &[BitSet],
    mut current: BitSet,
    scratch: &mut EvalScratch,
) -> BitSet {
    let path = p.selection_path();
    current.intersect_with(&sub[path[0].index()]);
    for &next in &path[1..] {
        if current.is_empty() {
            break;
        }
        let mut reach = scratch.take();
        match p.axis(next) {
            Axis::Child => {
                for m in sub[next.index()].iter() {
                    let par = ft.parent(m);
                    if par != NO_PARENT && current.contains(par as usize) {
                        reach.insert(m);
                    }
                }
            }
            Axis::Descendant => {
                // Forward sweep: a slot is strictly under `current` iff its
                // parent is in `current` or already under it (parents
                // precede children in slot order).
                for i in 0..ft.arena_len() {
                    let par = ft.parent(i);
                    if par != NO_PARENT
                        && (current.contains(par as usize) || reach.contains(par as usize))
                    {
                        reach.insert(i);
                    }
                }
                reach.intersect_with(&sub[next.index()]);
            }
        }
        scratch.put(current);
        current = reach;
    }
    current
}

fn collect_nodes(set: &BitSet) -> Vec<NodeId> {
    set.iter().map(|i| NodeId(i as u32)).collect()
}

/// Flat-tree `P(t)` — same output as [`crate::embed::evaluate`] on the
/// frozen tree, drawing buffers from the thread-local pool.
pub fn evaluate_flat(p: &Pattern, ft: &FlatTree) -> Vec<NodeId> {
    with_tl_scratch(ft.arena_len(), |scratch| {
        let sub = sub_match_sets_into(p, ft, None, scratch);
        let mut roots = scratch.take();
        roots.insert(ft.root().index());
        let out = propagate_selection_flat(p, ft, &sub, roots, scratch);
        let nodes = collect_nodes(&out);
        scratch.put(out);
        scratch.put_all(sub);
        nodes
    })
}

/// Flat-tree anchored evaluation `⋃_n p(t↓n)` — same output as
/// [`crate::embed::evaluate_anchored`] on the frozen tree. Tombstoned
/// anchors contribute nothing (their live bit is cleared at freeze time).
pub fn evaluate_anchored_flat(p: &Pattern, ft: &FlatTree, anchors: &[NodeId]) -> Vec<NodeId> {
    with_tl_scratch(ft.arena_len(), |scratch| {
        let sub = sub_match_sets_into(p, ft, None, scratch);
        let mut roots = scratch.take();
        for &n in anchors {
            if ft.is_alive(n.index()) {
                roots.insert(n.index());
            }
        }
        let out = propagate_selection_flat(p, ft, &sub, roots, scratch);
        let nodes = collect_nodes(&out);
        scratch.put(out);
        scratch.put_all(sub);
        nodes
    })
}

/// Does `test` accept slot `i`? (Dead slots carry label id `0`, which no
/// live label ever has, so they fail both arms.)
#[inline]
fn test_matches_flat(test: NodeTest, ft: &FlatTree, i: usize) -> bool {
    match test {
        NodeTest::Wildcard => ft.is_alive(i),
        NodeTest::Label(l) => ft.label_id(i) == l.id(),
    }
}

/// Memoizing lazy subtree matcher over a [`FlatTree`] — the flat twin of
/// the maintainer's `SubMatcher`, used for the handful of *path* nodes of a
/// region evaluation (the proper ancestors of the region root), where
/// building full word-parallel tables would defeat the point of the
/// restriction.
struct FlatSubMatcher<'a> {
    p: &'a Pattern,
    ft: &'a FlatTree,
    node_memo: HashMap<(u32, u32), bool>,
    desc_memo: HashMap<(u32, u32), bool>,
}

impl<'a> FlatSubMatcher<'a> {
    fn new(p: &'a Pattern, ft: &'a FlatTree) -> FlatSubMatcher<'a> {
        FlatSubMatcher { p, ft, node_memo: HashMap::new(), desc_memo: HashMap::new() }
    }

    /// Does the pattern subtree rooted at `q` embed with `q ↦ slot w`?
    fn matches_at(&mut self, q: PatId, w: usize) -> bool {
        if let Some(&v) = self.node_memo.get(&(q.0, w as u32)) {
            return v;
        }
        let (p, ft) = (self.p, self.ft);
        let ok = test_matches_flat(p.test(q), ft, w)
            && p.children(q).iter().all(|&c| self.witness_below(c, w));
        self.node_memo.insert((q.0, w as u32), ok);
        ok
    }

    fn witness_below(&mut self, c: PatId, v: usize) -> bool {
        let ft = self.ft;
        match self.p.axis(c) {
            Axis::Child => ft.children(v).iter().any(|&w| self.matches_at(c, w as usize)),
            Axis::Descendant => self.desc_witness(c, v),
        }
    }

    fn desc_witness(&mut self, c: PatId, v: usize) -> bool {
        if let Some(&hit) = self.desc_memo.get(&(c.0, v as u32)) {
            return hit;
        }
        let ft = self.ft;
        let hit = ft
            .children(v)
            .iter()
            .any(|&w| self.matches_at(c, w as usize) || self.desc_witness(c, w as usize));
        self.desc_memo.insert((c.0, v as u32), hit);
        hit
    }

    /// `B_i(v)` for the spine decomposition: node test plus every non-spine
    /// branch hanging off spine position `i`.
    fn b_holds(&mut self, spine: &FlatSpine, i: usize, v: usize) -> bool {
        test_matches_flat(self.p.test(spine.nodes[i]), self.ft, v)
            && spine.branches[i].iter().all(|&c| self.witness_below(c, v))
    }
}

/// The selection-spine decomposition of a pattern (spine nodes, the axis
/// entering each, and the non-spine branches hanging off each) — the shape
/// the region-restricted evaluation walks. Mirrors the maintainer's
/// `SpineInfo`, rebuilt here so `xpv-semantics` stays dependency-free.
struct FlatSpine {
    nodes: Vec<PatId>,
    axes: Vec<Axis>,
    branches: Vec<Vec<PatId>>,
}

impl FlatSpine {
    fn new(p: &Pattern) -> FlatSpine {
        let nodes = p.selection_path();
        let axes = nodes
            .iter()
            .enumerate()
            .map(|(i, &u)| if i == 0 { Axis::Child } else { p.axis(u) })
            .collect();
        let branches = nodes
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                let next = nodes.get(i + 1).copied();
                p.children(u).iter().copied().filter(|&c| Some(c) != next).collect()
            })
            .collect();
        FlatSpine { nodes, axes, branches }
    }
}

/// Region-restricted word-parallel evaluation: the answers of `p` that lie
/// **inside `subtree(region_root)`** on the frozen snapshot, plus the
/// region's subtree mask. Output-identical to the maintainer's `Tree`-path
/// `region_answers` (the property-test oracle), but runs the flat matcher:
///
/// * branch sub-match tables are seeded from **postings intersected with
///   the region's subtree mask** — sound because any embedding that places
///   a spine node inside the region places that node's whole pattern
///   subtree inside it too (regions are subtree-closed), so masked tables
///   are exact for in-region images;
/// * the **path part** (proper ancestors of the region root, whose branch
///   witnesses may live outside the region) uses the lazy memoized
///   [`FlatSubMatcher`] instead — `O(depth)` nodes, not `O(n)`;
/// * the in-region reachability sweep is run per spine position with
///   word-level set operations, exploiting the parents-precede-children
///   slot order for the `Descendant` closure.
///
/// `region_root` must be a live slot. Patterns whose spine exceeds the
/// 63-position reach mask fall back to a full flat evaluation filtered to
/// the region (sound; never observed in practice).
pub fn region_answers_flat(
    p: &Pattern,
    ft: &FlatTree,
    region_root: NodeId,
) -> (Vec<NodeId>, BitSet) {
    debug_assert!(ft.is_alive(region_root.index()), "region roots are live");
    let mask = ft.subtree_mask(region_root.index());
    let spine = FlatSpine::new(p);
    let k = spine.nodes.len() - 1;
    if k > 63 {
        let found = evaluate_flat(p, ft).into_iter().filter(|n| mask.contains(n.index())).collect();
        return (found, mask);
    }
    let root = ft.root().index();
    let rr = region_root.index();

    let found = with_tl_scratch(ft.arena_len(), |scratch| {
        // Masked sub-match tables: for every pattern node, the in-region
        // slots where its pattern subtree embeds (exact within the region —
        // see above). Only branch subtrees are read below, but the bottom-up
        // sweep computes all nodes in one pass.
        let mut sub: Vec<BitSet> = (0..p.len()).map(|_| scratch.take()).collect();
        for pi in (0..p.len()).rev() {
            let pid = PatId(pi as u32);
            seed_node(p, ft, pid, &mut sub[pi]);
            sub[pi].intersect_with(&mask);
            fold_children(p, ft, pid, &mut sub, scratch);
        }

        // B-sets per spine position, in-region: node test ∩ mask ∩ the
        // witness set of every non-spine branch.
        let mut bm: Vec<BitSet> = Vec::with_capacity(k + 1);
        for i in 0..=k {
            let mut b = scratch.take();
            seed_node(p, ft, spine.nodes[i], &mut b);
            b.intersect_with(&mask);
            for &c in &spine.branches[i] {
                if b.is_empty() {
                    break;
                }
                let ok = edge_witness(p, ft, c, &sub[c.index()], scratch);
                b.intersect_with(&ok);
                scratch.put(ok);
            }
            bm.push(b);
        }
        scratch.put_all(sub);

        // Path walk over the proper ancestors of the region root (outside
        // the region, lazy matcher): reach mask and ancestor-union at the
        // region root's parent.
        let mut lazy = FlatSubMatcher::new(p, ft);
        let mut path: Vec<usize> = Vec::new();
        let mut cur = ft.parent(rr);
        while cur != NO_PARENT {
            path.push(cur as usize);
            cur = ft.parent(cur as usize);
        }
        path.reverse();
        let mut reach_parent = 0u64;
        let mut anc_parent = 0u64;
        for (step, &v) in path.iter().enumerate() {
            if step == 0 {
                // Only the document root can host u_0 (strong embeddings).
                reach_parent = if lazy.b_holds(&spine, 0, v) { 1 } else { 0 };
            } else {
                let anc = anc_parent | reach_parent;
                let mut r = 0u64;
                for i in 1..=k {
                    let prev_ok = match spine.axes[i] {
                        Axis::Child => reach_parent & (1 << (i - 1)) != 0,
                        Axis::Descendant => anc & (1 << (i - 1)) != 0,
                    };
                    if prev_ok && lazy.b_holds(&spine, i, v) {
                        r |= 1 << i;
                    }
                }
                anc_parent = anc;
                reach_parent = r;
            }
        }
        let outside = anc_parent | reach_parent;

        // In-region reachability, one set per spine position. `r_prev`
        // holds the valid in-region images of position i-1.
        let mut r_prev = scratch.take();
        if rr == root && bm[0].contains(root) {
            r_prev.insert(root);
        }
        // `i` walks spine positions, indexing `bm`, `spine.axes`, and the
        // reach bit masks in lockstep — a range loop is the clear shape.
        #[allow(clippy::needless_range_loop)]
        for i in 1..=k {
            let mut cur_set = scratch.take();
            match spine.axes[i] {
                Axis::Child => {
                    // Entering the region from the path: u_{i-1} at the
                    // region root's parent puts u_i exactly at the root.
                    if reach_parent & (1 << (i - 1)) != 0 && bm[i].contains(rr) {
                        cur_set.insert(rr);
                    }
                    for m in bm[i].iter() {
                        let par = ft.parent(m);
                        if par != NO_PARENT && r_prev.contains(par as usize) {
                            cur_set.insert(m);
                        }
                    }
                }
                Axis::Descendant => {
                    if outside & (1 << (i - 1)) != 0 {
                        // Some outside ancestor hosts u_{i-1}: every region
                        // slot is a proper descendant of it.
                        cur_set.copy_from(&bm[i]);
                    } else {
                        // Strict-descendant closure of r_prev within the
                        // region: forward sweep in slot order (parents
                        // precede children).
                        let mut below = scratch.take();
                        for m in mask.iter() {
                            let par = ft.parent(m);
                            if par != NO_PARENT
                                && (r_prev.contains(par as usize) || below.contains(par as usize))
                            {
                                below.insert(m);
                            }
                        }
                        cur_set.copy_from(&bm[i]);
                        cur_set.intersect_with(&below);
                        scratch.put(below);
                    }
                }
            }
            scratch.put(r_prev);
            r_prev = cur_set;
        }
        let found = collect_nodes(&r_prev);
        scratch.put(r_prev);
        scratch.put_all(bm);
        found
    });
    (found, mask)
}

/// A fused evaluator for one batch of queries against one snapshot.
///
/// Beyond the scratch pool, it keeps every completed sub-match set of the
/// batch keyed by the structural fingerprint of its pattern subtree
/// ([`Pattern::fingerprint_at`] — the same hashes the `PatternInterner`
/// dedups by, stable under sibling reordering), so queries sharing interned
/// pattern nodes compute each shared table once.
pub struct BatchEval<'t> {
    ft: &'t FlatTree,
    scratch: EvalScratch,
    tables: HashMap<u64, BitSet>,
    share_tables: bool,
    shared_hits: u64,
}

impl<'t> BatchEval<'t> {
    /// A fused evaluator with scratch reuse and table sharing enabled.
    pub fn new(ft: &'t FlatTree) -> BatchEval<'t> {
        BatchEval::with_options(ft, true, true)
    }

    /// Ablation constructor: toggle scratch reuse and cross-query sub-match
    /// table sharing independently (the `eval-bench` knobs).
    pub fn with_options(
        ft: &'t FlatTree,
        reuse_scratch: bool,
        share_tables: bool,
    ) -> BatchEval<'t> {
        BatchEval {
            ft,
            scratch: EvalScratch::with_reuse(ft.arena_len(), reuse_scratch),
            tables: HashMap::new(),
            share_tables,
            shared_hits: 0,
        }
    }

    /// How many sub-match sets were served from the shared table cache.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// The snapshot this evaluator is bound to.
    pub fn flat(&self) -> &FlatTree {
        self.ft
    }

    /// Sub-match table with cross-query sharing (unpinned only — pinning
    /// would poison the shared cache).
    fn sub_tables(&mut self, p: &Pattern) -> Vec<BitSet> {
        let mut sub: Vec<BitSet> = (0..p.len()).map(|_| self.scratch.take()).collect();
        for pi in (0..p.len()).rev() {
            let pid = PatId(pi as u32);
            if self.share_tables {
                let fp = p.fingerprint_at(pid);
                if let Some(cached) = self.tables.get(&fp) {
                    self.shared_hits += 1;
                    sub[pi].copy_from(cached);
                    continue;
                }
                seed_node(p, self.ft, pid, &mut sub[pi]);
                fold_children(p, self.ft, pid, &mut sub, &mut self.scratch);
                self.tables.insert(fp, sub[pi].clone());
            } else {
                seed_node(p, self.ft, pid, &mut sub[pi]);
                fold_children(p, self.ft, pid, &mut sub, &mut self.scratch);
            }
        }
        sub
    }

    /// `P(t)` against the bound snapshot — identical output to
    /// [`evaluate_flat`] (and to the reference [`crate::embed::evaluate`]).
    pub fn evaluate(&mut self, p: &Pattern) -> Vec<NodeId> {
        let out = self.output_set(p, None);
        let nodes = collect_nodes(&out);
        self.scratch.put(out);
        nodes
    }

    /// Anchored evaluation against the bound snapshot — identical output to
    /// [`evaluate_anchored_flat`].
    pub fn evaluate_anchored(&mut self, p: &Pattern, anchors: &[NodeId]) -> Vec<NodeId> {
        let out = self.output_set(p, Some(anchors));
        let nodes = collect_nodes(&out);
        self.scratch.put(out);
        nodes
    }

    /// [`BatchEval::evaluate`] writing the answer into `arena` instead of
    /// allocating a `Vec` — the run's nodes are identical (the ablation
    /// suite pins this byte-for-byte).
    pub fn evaluate_into(&mut self, p: &Pattern, arena: &mut AnswerArena) -> AnswerRef {
        let out = self.output_set(p, None);
        let r = arena.push_run(out.iter().map(|i| NodeId(i as u32)));
        self.scratch.put(out);
        r
    }

    /// [`BatchEval::evaluate_anchored`] writing into `arena`.
    pub fn evaluate_anchored_into(
        &mut self,
        p: &Pattern,
        anchors: &[NodeId],
        arena: &mut AnswerArena,
    ) -> AnswerRef {
        let out = self.output_set(p, Some(anchors));
        let r = arena.push_run(out.iter().map(|i| NodeId(i as u32)));
        self.scratch.put(out);
        r
    }

    /// The output node set of `p` over the snapshot (`anchors == None`
    /// means "from the document root"); the caller returns the set to the
    /// scratch pool after reading it out.
    fn output_set(&mut self, p: &Pattern, anchors: Option<&[NodeId]>) -> BitSet {
        let mut roots = self.scratch.take();
        match anchors {
            None => {
                roots.insert(self.ft.root().index());
            }
            Some(anchors) => {
                for &n in anchors {
                    if self.ft.is_alive(n.index()) {
                        roots.insert(n.index());
                    }
                }
            }
        }
        let sub = self.sub_tables(p);
        let out = propagate_selection_flat(p, self.ft, &sub, roots, &mut self.scratch);
        self.scratch.put_all(sub);
        out
    }
}

/// Evaluates a whole batch in one fused pass (one [`BatchEval`]) and
/// returns per-query outputs in order.
pub fn evaluate_batch_flat(ft: &FlatTree, queries: &[&Pattern]) -> Vec<Vec<NodeId>> {
    let mut batch = BatchEval::new(ft);
    queries.iter().map(|p| batch.evaluate(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{evaluate, evaluate_anchored, sub_match_sets};
    use xpv_model::{Tree, TreeBuilder};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn doc() -> Tree {
        TreeBuilder::root("a", |t| {
            t.child("b", |t| {
                t.child("c", |t| {
                    t.leaf("d");
                });
            });
            t.child("c", |t| {
                t.leaf("d");
            });
        })
    }

    const QUERIES: &[&str] = &[
        "a/c/d",
        "a//d",
        "a/*",
        "a//c[d]",
        "a/b/c[d]",
        "a//c[x]",
        "b//d",
        "a[b]//d",
        "a[b[c]][c/d]//d",
        "*/*/*",
        "*//*",
        "a",
        "*",
        "a//*",
    ];

    #[test]
    fn flat_tables_match_reference() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        for q in QUERIES {
            let p = pat(q);
            assert_eq!(sub_match_sets_flat(&p, &ft, None), sub_match_sets(&p, &t, None), "{q}");
        }
    }

    #[test]
    fn flat_evaluate_matches_reference() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        for q in QUERIES {
            let p = pat(q);
            assert_eq!(evaluate_flat(&p, &ft), evaluate(&p, &t), "{q}");
        }
    }

    #[test]
    fn flat_anchored_matches_reference() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        let cs = evaluate(&pat("a//c"), &t);
        assert_eq!(
            evaluate_anchored_flat(&pat("c/d"), &ft, &cs),
            evaluate_anchored(&pat("c/d"), &t, &cs)
        );
        assert!(evaluate_anchored_flat(&pat("c/d"), &ft, &[]).is_empty());
    }

    #[test]
    fn flat_handles_tombstones() {
        let mut t = doc();
        let b = t.children(t.root())[0];
        t.remove_subtree(b);
        let ft = FlatTree::freeze(&t);
        for q in QUERIES {
            let p = pat(q);
            assert_eq!(evaluate_flat(&p, &ft), evaluate(&p, &t), "{q} after edit");
            assert_eq!(sub_match_sets_flat(&p, &ft, None), sub_match_sets(&p, &t, None), "{q}");
        }
        // Tombstoned anchors contribute nothing, matching the reference.
        let r = evaluate_anchored_flat(&pat("b//d"), &ft, &[b]);
        assert_eq!(r, evaluate_anchored(&pat("b//d"), &t, &[b]));
        assert!(r.is_empty());
    }

    #[test]
    fn region_answers_match_global_restriction() {
        // For every live region root: region answers = global answers that
        // lie inside the subtree (the same equivalence the maintainer's
        // `Tree`-path oracle pins, here for the flat matcher).
        let t = doc();
        let ft = FlatTree::freeze(&t);
        for q in QUERIES {
            let p = pat(q);
            let global = evaluate_flat(&p, &ft);
            for n in t.node_ids() {
                let (found, mask) = region_answers_flat(&p, &ft, n);
                let expect: Vec<NodeId> =
                    global.iter().copied().filter(|m| mask.contains(m.index())).collect();
                assert_eq!(found, expect, "{q} at region {n:?}");
                assert_eq!(mask, ft.subtree_mask(n.index()), "{q} mask at {n:?}");
            }
        }
    }

    #[test]
    fn region_answers_handle_tombstones() {
        let mut t = doc();
        let b = t.children(t.root())[0];
        t.remove_subtree(b);
        t.add_child(t.root(), xpv_model::Label::new("c"));
        let ft = FlatTree::freeze(&t);
        for q in QUERIES {
            let p = pat(q);
            let global = evaluate_flat(&p, &ft);
            for n in t.node_ids() {
                let (found, mask) = region_answers_flat(&p, &ft, n);
                let expect: Vec<NodeId> =
                    global.iter().copied().filter(|m| mask.contains(m.index())).collect();
                assert_eq!(found, expect, "{q} at region {n:?} after edits");
            }
        }
    }

    #[test]
    fn pinning_matches_reference() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        let p = pat("a//d");
        for n in t.node_ids() {
            assert_eq!(
                sub_match_sets_flat(&p, &ft, Some((p.output(), n))),
                sub_match_sets(&p, &t, Some((p.output(), n))),
                "pin at {n:?}"
            );
        }
    }

    #[test]
    fn batch_matches_per_query_and_shares_tables() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        let pats: Vec<Pattern> = QUERIES.iter().map(|q| pat(q)).collect();
        let refs: Vec<&Pattern> = pats.iter().collect();
        let mut batch = BatchEval::new(&ft);
        for p in &refs {
            assert_eq!(batch.evaluate(p), evaluate(p, &t));
        }
        // Shared subtrees (a//d appears alone and inside a[b]//d's spine
        // suffix, the repeated single-node patterns, …) must hit the cache.
        assert!(batch.shared_hits() > 0, "expected cross-query table sharing");
        // And the convenience wrapper agrees.
        let outs = evaluate_batch_flat(&ft, &refs);
        for (p, out) in refs.iter().zip(&outs) {
            assert_eq!(*out, evaluate(p, &t));
        }
    }

    #[test]
    fn ablation_arms_agree() {
        let t = doc();
        let ft = FlatTree::freeze(&t);
        let pats: Vec<Pattern> = QUERIES.iter().map(|q| pat(q)).collect();
        for (reuse, share) in [(true, true), (true, false), (false, true), (false, false)] {
            let mut batch = BatchEval::with_options(&ft, reuse, share);
            for p in &pats {
                assert_eq!(batch.evaluate(p), evaluate(p, &t), "reuse={reuse} share={share}");
            }
        }
    }
}
