//! Pattern-to-pattern homomorphisms.
//!
//! A homomorphism `h : Q → P` maps the nodes of `Q` to nodes of `P` such that
//!
//! * `h(root(Q)) = root(P)` and `h(out(Q)) = out(P)`;
//! * labels are preserved (`Q`'s wildcards map anywhere; a `Σ`-labeled node
//!   of `Q` maps to a node of `P` with the *same* label — a wildcard node of
//!   `P` does not satisfy a labeled node of `Q`);
//! * child edges of `Q` map to child edges of `P`;
//! * descendant edges of `Q` map to proper-descendant pairs of `P` (any mix
//!   of edges along the path).
//!
//! The existence of a homomorphism always implies containment `P ⊑ Q`
//! (compose `h` with any embedding of `P`); for the three sub-fragments
//! `XP{//,[]}`, `XP{//,*}`, `XP{[],*}` it is also *necessary* (Miklau–Suciu,
//! the paper's \[14\]), which both makes containment PTIME there and gives the
//! rewriting algorithm of Xu & Özsoyoglu \[17\] its engine. For the full
//! fragment it serves as a sound fast path ahead of the canonical-model test.

use xpv_model::BitSet;
use xpv_pattern::{Axis, NodeTest, PatId, Pattern};

/// Root handling for homomorphism search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HomMode {
    /// `h(root(Q)) = root(P)` — witnesses ordinary containment.
    RootAnchored,
    /// `root(Q)` may map anywhere — witnesses weak containment.
    Free,
}

/// Does the target pattern `p` have node `b` as a proper descendant of `a`?
fn is_proper_desc(p: &Pattern, a: PatId, b: PatId) -> bool {
    let mut cur = p.parent(b);
    while let Some(x) = cur {
        if x == a {
            return true;
        }
        cur = p.parent(x);
    }
    false
}

fn test_compatible(q_test: NodeTest, p_test: NodeTest) -> bool {
    match q_test {
        NodeTest::Wildcard => true,
        NodeTest::Label(l) => p_test == NodeTest::Label(l),
    }
}

/// Decides the existence of a homomorphism `h : q → p` (with `h(out(q)) =
/// out(p)` and the root condition given by `mode`) by the same bottom-up
/// bitset dynamic program as the tree matcher. Runs in
/// `O(|q| · |p| · degree)` time.
pub fn homomorphism_exists(q: &Pattern, p: &Pattern, mode: HomMode) -> bool {
    let np = p.len();
    let mut sub: Vec<BitSet> = vec![BitSet::new(np); q.len()];

    for qi in (0..q.len()).rev() {
        let qid = PatId(qi as u32);
        let mut child_ok: Vec<BitSet> = Vec::with_capacity(q.children(qid).len());
        for &c in q.children(qid) {
            let mut ok = BitSet::new(np);
            match q.axis(c) {
                Axis::Child => {
                    for n in p.node_ids() {
                        // A child edge of q must land on a child edge of p.
                        let hit = p.children(n).iter().any(|&m| {
                            p.axis(m) == Axis::Child && sub[c.index()].contains(m.index())
                        });
                        if hit {
                            ok.insert(n.index());
                        }
                    }
                }
                Axis::Descendant => {
                    // desc_ok[n] = OR over p-children m of (sub[c][m] | desc_ok[m]);
                    // any proper descendant (across any edge kinds) qualifies.
                    for ni in (0..np).rev() {
                        let n = PatId(ni as u32);
                        let hit = p
                            .children(n)
                            .iter()
                            .any(|&m| sub[c.index()].contains(m.index()) || ok.contains(m.index()));
                        if hit {
                            ok.insert(ni);
                        }
                    }
                }
            }
            child_ok.push(ok);
        }

        for n in p.node_ids() {
            if !test_compatible(q.test(qid), p.test(n)) {
                continue;
            }
            if qid == q.output() && n != p.output() {
                continue;
            }
            if child_ok.iter().all(|ok| ok.contains(n.index())) {
                sub[qi].insert(n.index());
            }
        }
    }

    match mode {
        HomMode::RootAnchored => sub[q.root().index()].contains(p.root().index()),
        HomMode::Free => !sub[q.root().index()].is_empty(),
    }
}

/// Extracts one homomorphism `h : q → p` as a node map, if one exists.
pub fn find_homomorphism(q: &Pattern, p: &Pattern, mode: HomMode) -> Option<Vec<PatId>> {
    // Recompute the table (cheap) and extract greedily, mirroring the tree
    // matcher's witness construction.
    let np = p.len();
    let mut sub: Vec<BitSet> = vec![BitSet::new(np); q.len()];
    for qi in (0..q.len()).rev() {
        let qid = PatId(qi as u32);
        for n in p.node_ids() {
            if !test_compatible(q.test(qid), p.test(n)) {
                continue;
            }
            if qid == q.output() && n != p.output() {
                continue;
            }
            let all_ok = q.children(qid).iter().all(|&c| match q.axis(c) {
                Axis::Child => p
                    .children(n)
                    .iter()
                    .any(|&m| p.axis(m) == Axis::Child && sub[c.index()].contains(m.index())),
                Axis::Descendant => p
                    .node_ids()
                    .any(|m| sub[c.index()].contains(m.index()) && is_proper_desc(p, n, m)),
            });
            if all_ok {
                sub[qi].insert(n.index());
            }
        }
    }

    let anchor = match mode {
        HomMode::RootAnchored => {
            if sub[q.root().index()].contains(p.root().index()) {
                p.root()
            } else {
                return None;
            }
        }
        HomMode::Free => PatId(sub[q.root().index()].iter().next()? as u32),
    };

    let mut map = vec![PatId(0); q.len()];
    map[q.root().index()] = anchor;
    let mut stack = vec![q.root()];
    while let Some(cur) = stack.pop() {
        let at = map[cur.index()];
        for &c in q.children(cur) {
            let witness = match q.axis(c) {
                Axis::Child => p
                    .children(at)
                    .iter()
                    .copied()
                    .find(|&m| p.axis(m) == Axis::Child && sub[c.index()].contains(m.index())),
                Axis::Descendant => p
                    .node_ids()
                    .find(|&m| sub[c.index()].contains(m.index()) && is_proper_desc(p, at, m)),
            };
            map[c.index()] = witness.expect("sub table guarantees extension");
            stack.push(c);
        }
    }
    Some(map)
}

/// Validates a homomorphism map (test oracle).
pub fn check_homomorphism(q: &Pattern, p: &Pattern, h: &[PatId], mode: HomMode) -> bool {
    if h.len() != q.len() {
        return false;
    }
    if mode == HomMode::RootAnchored && h[q.root().index()] != p.root() {
        return false;
    }
    if h[q.output().index()] != p.output() {
        return false;
    }
    for n in q.node_ids() {
        let img = h[n.index()];
        if !test_compatible(q.test(n), p.test(img)) {
            return false;
        }
        if let Some(par) = q.parent(n) {
            let pimg = h[par.index()];
            match q.axis(n) {
                Axis::Child => {
                    if p.parent(img) != Some(pimg) || p.axis(img) != Axis::Child {
                        return false;
                    }
                }
                Axis::Descendant => {
                    if !is_proper_desc(p, pimg, img) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn hom(qs: &str, ps: &str) -> bool {
        homomorphism_exists(&pat(qs), &pat(ps), HomMode::RootAnchored)
    }

    #[test]
    fn identity_homomorphism() {
        for s in ["a", "a//b[c]/d", "*[x]//y"] {
            assert!(hom(s, s), "{s}");
        }
    }

    #[test]
    fn descendant_absorbs_longer_paths() {
        // q = a//c, p = a/b/c: the descendant edge maps to the 2-edge path.
        assert!(hom("a//c", "a/b/c"));
        // And across descendant edges of p.
        assert!(hom("a//c", "a//b/c"));
        // But a child edge cannot stretch.
        assert!(!hom("a/c", "a/b/c"));
        // Nor ride a descendant edge of p.
        assert!(!hom("a/c", "a//c"));
    }

    #[test]
    fn wildcards_map_anywhere_but_labels_are_strict() {
        assert!(hom("a/*", "a/b"));
        // p has a wildcard where q needs a label: no.
        assert!(!hom("a/b", "a/*"));
    }

    #[test]
    fn branches_can_merge() {
        // Both branches of q map onto the single branch of p (outputs are the
        // roots on both sides).
        assert!(hom("a[b][b/c]", "a[b/c]"));
        assert!(!hom("a[b][d]", "a[b]"));
    }

    #[test]
    fn output_must_map_to_output() {
        // Same shape, different output: no homomorphism.
        let q = pat("a/b"); // output b
        let mut p = pat("a/b");
        p.set_output(p.root()); // output a, prints a[b]
        assert!(!homomorphism_exists(&q, &p, HomMode::RootAnchored));
        assert!(!homomorphism_exists(&p, &q, HomMode::RootAnchored));
    }

    #[test]
    fn free_mode_allows_root_shift() {
        // q = b/c (out c) into p = a/b/c (out c): root must shift to b.
        assert!(!homomorphism_exists(&pat("b/c"), &pat("a/b/c"), HomMode::RootAnchored));
        assert!(homomorphism_exists(&pat("b/c"), &pat("a/b/c"), HomMode::Free));
    }

    #[test]
    fn extracted_homomorphisms_validate() {
        let cases = [
            ("a//c", "a/b/c"),
            ("a[b][b/c]", "a[b/c]"),
            ("a/*//d", "a/b/c/d"),
            ("*//d", "a/b[x]/d"),
        ];
        for (qs, ps) in cases {
            let q = pat(qs);
            let p = pat(ps);
            let h = find_homomorphism(&q, &p, HomMode::RootAnchored)
                .unwrap_or_else(|| panic!("{qs} -> {ps}"));
            assert!(check_homomorphism(&q, &p, &h, HomMode::RootAnchored), "{qs} -> {ps}");
        }
    }

    #[test]
    fn descendant_edge_needs_proper_descendant() {
        // q = a//a must map the second a strictly below the first.
        assert!(!hom("a//a", "a"));
        assert!(hom("a//a", "a/a"));
    }
}
