//! Canonical models (Section 2.1) and the expansion bound.
//!
//! A canonical model of a pattern `P` is a tree obtained by (1) replacing
//! every `*` with the reserved label `⊥` and (2) replacing every descendant
//! edge by a path of one or more edges whose internal nodes are labeled `⊥`.
//! [`tau`] builds the *minimal* canonical model (every descendant edge becomes
//! a single edge) — the transformation `τ` used throughout the paper's
//! proofs. [`CanonicalModels`] enumerates the models whose per-descendant-edge
//! expansion lengths range over `1..=bound`.
//!
//! Containment `P1 ⊑ P2` is decided on the finitely many canonical models of
//! `P1` with lengths bounded by [`expansion_bound`]`(P2)` — see DESIGN.md §3
//! for the self-contained proof that `2·s + 3` expansion steps suffice, where
//! `s` is the longest rigid wildcard chain of `P2`. (Miklau & Suciu prove a
//! tighter bound; a looser bound only adds models to check and cannot change
//! the verdict.)

use xpv_model::{Label, NodeId, Tree};
use xpv_pattern::{star_chain_len, Axis, PatId, Pattern};

/// A sound-and-complete per-edge expansion bound for testing whether
/// embeddings of `q` survive arbitrary canonical expansions.
pub fn expansion_bound(q: &Pattern) -> usize {
    2 * star_chain_len(q) + 3
}

/// One canonical model: the tree, the image of every pattern node
/// (indexed by `PatId::index`), and the canonical output node.
#[derive(Clone, Debug)]
pub struct CanonicalModel {
    /// The document.
    pub tree: Tree,
    /// The canonical embedding: image of each pattern node.
    pub node_map: Vec<NodeId>,
    /// Image of the pattern's output node.
    pub output: NodeId,
}

/// Builds a canonical model of `p` with the given expansion length (number of
/// edges, `≥ 1`) for each descendant edge. `desc_edges` lists the pattern
/// nodes with an incoming descendant edge, in the order matching `lengths`.
fn build_model(p: &Pattern, desc_edges: &[PatId], lengths: &[usize]) -> CanonicalModel {
    debug_assert_eq!(desc_edges.len(), lengths.len());
    let bottom = Label::bottom();
    let label_of = |q: PatId| p.test(q).as_label().unwrap_or(bottom);

    let mut tree = Tree::new(label_of(p.root()));
    let mut node_map: Vec<NodeId> = vec![NodeId(0); p.len()];
    node_map[p.root().index()] = tree.root();

    // Arena order is parent-first, so parents are mapped before children.
    for q in p.node_ids().skip(1) {
        let parent_img = node_map[p.parent(q).expect("non-root").index()];
        let img = match p.axis(q) {
            Axis::Child => tree.add_child(parent_img, label_of(q)),
            Axis::Descendant => {
                let pos = desc_edges
                    .iter()
                    .position(|&e| e == q)
                    .expect("every descendant edge is registered");
                let len = lengths[pos];
                debug_assert!(len >= 1);
                let mut at = parent_img;
                for _ in 0..len - 1 {
                    at = tree.add_child(at, bottom);
                }
                tree.add_child(at, label_of(q))
            }
        };
        node_map[q.index()] = img;
    }
    let output = node_map[p.output().index()];
    CanonicalModel { tree, node_map, output }
}

/// The minimal canonical model `τ(P)`: every `*` becomes `⊥`, every
/// descendant edge becomes a single edge (footnote 1 of the paper).
pub fn tau(p: &Pattern) -> CanonicalModel {
    let desc_edges = descendant_edge_targets(p);
    let lengths = vec![1; desc_edges.len()];
    build_model(p, &desc_edges, &lengths)
}

/// The pattern nodes with an incoming descendant edge, in arena order.
pub fn descendant_edge_targets(p: &Pattern) -> Vec<PatId> {
    p.node_ids().filter(|&q| p.parent(q).is_some() && p.axis(q) == Axis::Descendant).collect()
}

/// Iterator over the canonical models of a pattern with per-edge expansion
/// lengths in `1..=bound`. Yields `bound^m` models, where `m` is the number
/// of descendant edges — the exponential behind the coNP containment test.
pub struct CanonicalModels<'p> {
    p: &'p Pattern,
    desc_edges: Vec<PatId>,
    lengths: Vec<usize>,
    bound: usize,
    done: bool,
}

impl<'p> CanonicalModels<'p> {
    /// Creates the enumeration with the given per-edge bound (`≥ 1`).
    pub fn new(p: &'p Pattern, bound: usize) -> CanonicalModels<'p> {
        assert!(bound >= 1, "expansion bound must be at least 1");
        let desc_edges = descendant_edge_targets(p);
        let lengths = vec![1; desc_edges.len()];
        CanonicalModels { p, desc_edges, lengths, bound, done: false }
    }

    /// The total number of models this iterator yields.
    pub fn count_models(&self) -> u128 {
        (self.bound as u128).pow(self.desc_edges.len() as u32)
    }
}

impl Iterator for CanonicalModels<'_> {
    type Item = CanonicalModel;

    fn next(&mut self) -> Option<CanonicalModel> {
        if self.done {
            return None;
        }
        let model = build_model(self.p, &self.desc_edges, &self.lengths);
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == self.lengths.len() {
                self.done = true;
                break;
            }
            if self.lengths[i] < self.bound {
                self.lengths[i] += 1;
                break;
            }
            self.lengths[i] = 1;
            i += 1;
        }
        Some(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{check_embedding, evaluate};
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn tau_replaces_stars_and_keeps_shape() {
        let p = pat("a[*]//b/*");
        let m = tau(&p);
        assert_eq!(m.tree.len(), p.len());
        // Stars became bottom.
        let stars = p.node_ids().filter(|&q| p.test(q).is_wildcard()).count();
        let bottoms = m.tree.node_ids().filter(|&n| m.tree.label(n).is_bottom()).count();
        assert_eq!(stars, bottoms);
    }

    #[test]
    fn tau_is_a_model_of_p() {
        for s in ["a", "a//b", "a[*]//b/*", "x[y][.//z]/w//v"] {
            let p = pat(s);
            let m = tau(&p);
            // The canonical node map is itself an embedding.
            assert!(check_embedding(&p, &m.tree, &m.node_map, true), "{s}");
            // And the canonical output is an answer.
            assert!(evaluate(&p, &m.tree).contains(&m.output), "{s}");
        }
    }

    #[test]
    fn expansion_lengths_enumerate_fully() {
        let p = pat("a//b//c");
        let it = CanonicalModels::new(&p, 3);
        assert_eq!(it.count_models(), 9);
        let models: Vec<CanonicalModel> = it.collect();
        assert_eq!(models.len(), 9);
        // Sizes: 3 original nodes plus 0..=2 extra per edge.
        let mut sizes: Vec<usize> = models.iter().map(|m| m.tree.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![3, 4, 4, 5, 5, 5, 6, 6, 7]);
    }

    #[test]
    fn every_canonical_model_is_a_model() {
        let p = pat("a[*//x]/b//c[.//d]");
        for m in CanonicalModels::new(&p, 3) {
            assert!(check_embedding(&p, &m.tree, &m.node_map, true));
            assert!(evaluate(&p, &m.tree).contains(&m.output));
        }
    }

    #[test]
    fn no_descendant_edges_single_model() {
        let p = pat("a/b[c]");
        let it = CanonicalModels::new(&p, 5);
        assert_eq!(it.count_models(), 1);
        assert_eq!(it.count(), 1);
    }

    #[test]
    fn interior_nodes_are_bottom() {
        let p = pat("a//b");
        let long = CanonicalModels::new(&p, 3).max_by_key(|m| m.tree.len()).expect("nonempty");
        assert_eq!(long.tree.len(), 4);
        // Interior chain nodes carry ⊥; endpoints carry a and b.
        let labels: Vec<&str> = long.tree.node_ids().map(|n| long.tree.label(n).name()).collect();
        assert_eq!(labels.iter().filter(|&&l| l == xpv_model::BOTTOM_NAME).count(), 2);
        assert!(labels.contains(&"a") && labels.contains(&"b"));
    }

    #[test]
    fn bound_grows_with_star_chains() {
        assert_eq!(expansion_bound(&pat("a/b")), 3);
        assert_eq!(expansion_bound(&pat("*/*")), 7);
        assert_eq!(expansion_bound(&pat("a[*/*/*]//b")), 9);
    }
}
