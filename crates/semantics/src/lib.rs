//! # xpv-semantics — embeddings, evaluation, containment
//!
//! The semantic layer of the `xpath-views` workspace (Afrati et al., EDBT
//! 2009 reproduction). It implements:
//!
//! * **embeddings / weak embeddings** (Definition 2.1) and query evaluation
//!   `P(t)`, `P^w(t)` as output-node sets ([`evaluate`], [`evaluate_weak`]);
//! * the **word-parallel flat matcher** ([`evaluate_flat`], [`BatchEval`])
//!   — the same dynamic program run against frozen
//!   [`xpv_model::FlatTree`] snapshots with label-posting seeding, scratch
//!   buffer reuse, and cross-query sub-match sharing; the `Tree`-based path
//!   above stays as its reference oracle;
//! * **canonical models** (Section 2.1): the minimal model `τ(P)` ([`tau`])
//!   and bounded enumeration ([`CanonicalModels`]);
//! * **pattern homomorphisms** ([`homomorphism_exists`]) — the PTIME
//!   containment witness, complete on the three sub-fragments;
//! * **containment / equivalence**, strong and weak ([`contained`],
//!   [`equivalent`], [`weakly_contained`], [`weakly_equivalent`]), via the
//!   staged procedure described in DESIGN.md §3;
//! * the **memoizing containment oracle** ([`ContainmentOracle`]) — the
//!   shared decision service every planning layer routes through: patterns
//!   are interned to structural keys and both the homomorphism witnesses and
//!   the full canonical-model verdicts are memoized ([`OracleStats`] counts
//!   hits, misses, and coNP work). The free containment functions run the
//!   same staged procedure one-shot, so oracle and free-function verdicts
//!   always agree.

pub mod canonical;
pub mod contain;
pub mod embed;
pub mod flat;
pub mod hom;
pub mod oracle;
pub mod reduce;

pub use canonical::{
    descendant_edge_targets, expansion_bound, tau, CanonicalModel, CanonicalModels,
};
pub use contain::{
    contained, contained_with, equivalent, equivalent_opt, weakly_contained, weakly_contained_with,
    weakly_equivalent, ContainmentOptions, ContainmentOutcome,
};
pub use embed::{
    check_embedding, embeds_with_output, enumerate_embeddings, evaluate, evaluate_anchored,
    evaluate_weak, find_embedding, find_weak_embedding, sub_match_sets, weakly_embeds_with_output,
    Embedding,
};
pub use flat::{
    evaluate_anchored_flat, evaluate_batch_flat, evaluate_flat, region_answers_flat,
    sub_match_sets_flat, BatchEval, EvalScratch,
};
pub use hom::{check_homomorphism, find_homomorphism, homomorphism_exists, HomMode};
pub use oracle::{ContainmentOracle, OracleStats, DEFAULT_ORACLE_SHARDS};
pub use reduce::{is_non_redundant, redundant_branches, remove_redundant_branches};
