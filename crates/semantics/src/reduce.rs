//! Redundancy elimination (the paper's Section 1/6 connection to \[10\]).
//!
//! A pattern is **non-redundant** if no branch (non-selection subtree) can be
//! deleted while preserving equivalence. The Proposition 3.4 argument assumes
//! rewritings are non-redundant w.l.o.g.; the paper's conclusion points out
//! that whether non-redundancy coincides with minimality is open for
//! `XP{//,[],*}` — here we only need the *reduction*, which is
//! straightforward (each deletion is checked with the equivalence
//! procedure), not minimality.
//!
//! Two passes are provided:
//!
//! * [`Pattern::dedup_sibling_branches`] (in `xpv-pattern`) — syntactic twin
//!   removal, always sound, no equivalence tests;
//! * [`remove_redundant_branches`] — semantic: greedily deletes branches
//!   whose removal preserves equivalence, until none does (a non-redundant
//!   pattern). Each step runs one (coNP) equivalence test.

use xpv_pattern::{PatId, Pattern};

use crate::contain::{contained_with, ContainmentOptions};

/// Returns an equivalent, non-redundant version of `p`: no further branch
/// can be removed without changing the pattern's meaning.
pub fn remove_redundant_branches(p: &Pattern) -> Pattern {
    let mut cur = p.dedup_sibling_branches();
    let opts = ContainmentOptions::default();
    'outer: loop {
        let selection = cur.selection_path();
        // Candidate deletions: maximal non-selection subtrees (children of
        // selection-path nodes or of branch nodes). Deleting a whole subtree
        // subsumes deleting its parts, and the loop re-runs to a fixpoint.
        let nodes: Vec<PatId> = cur.node_ids().collect();
        for n in nodes {
            if selection.contains(&n) || cur.parent(n).is_none() {
                continue;
            }
            let smaller = cur.without_subtree(n);
            // Removal only weakens: cur ⊑ smaller always. Equivalence holds
            // iff smaller ⊑ cur.
            if contained_with(&smaller, &cur, &opts).holds {
                cur = smaller;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Is `p` non-redundant (no single branch deletion preserves equivalence)?
pub fn is_non_redundant(p: &Pattern) -> bool {
    let selection = p.selection_path();
    let opts = ContainmentOptions::default();
    for n in p.node_ids() {
        if selection.contains(&n) || p.parent(n).is_none() {
            continue;
        }
        let smaller = p.without_subtree(n);
        if contained_with(&smaller, p, &opts).holds {
            return false;
        }
    }
    true
}

/// Convenience: deletable branch roots of `p` (each witnessed by an
/// equivalence-preserving removal). Useful for diagnostics and tests.
pub fn redundant_branches(p: &Pattern) -> Vec<PatId> {
    let selection = p.selection_path();
    let opts = ContainmentOptions::default();
    p.node_ids()
        .filter(|&n| {
            if selection.contains(&n) || p.parent(n).is_none() {
                return false;
            }
            contained_with(&p.without_subtree(n), p, &opts).holds
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::equivalent;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    #[test]
    fn subsumed_branch_is_removed() {
        // a[b][b/c]/d: the bare b branch is implied by b/c.
        let p = pat("a[b][b/c]/d");
        let r = remove_redundant_branches(&p);
        assert!(equivalent(&p, &r));
        assert_eq!(r.to_string(), "a[b/c]/d");
        assert!(is_non_redundant(&r));
        assert!(!is_non_redundant(&p));
    }

    #[test]
    fn descendant_branch_subsumption() {
        // a[.//b][x/b]/d: .//b is implied by x/b (b is a proper descendant
        // through x).
        let p = pat("a[.//b][x/b]/d");
        let r = remove_redundant_branches(&p);
        assert!(equivalent(&p, &r));
        assert_eq!(r.to_string(), "a[x/b]/d");
    }

    #[test]
    fn independent_branches_stay() {
        let p = pat("a[b][c]/d");
        let r = remove_redundant_branches(&p);
        assert_eq!(r.len(), p.len());
        assert!(is_non_redundant(&p));
    }

    #[test]
    fn twins_removed_syntactically_then_semantically_stable() {
        let p = pat("a[b/c][b/c][b]/d");
        let r = remove_redundant_branches(&p);
        assert!(equivalent(&p, &r));
        assert_eq!(r.to_string(), "a[b/c]/d");
    }

    #[test]
    fn wildcard_branch_subsumed_by_any_branch() {
        // a[*][b]/d: the * branch is implied by the b branch.
        let p = pat("a[*][b]/d");
        let r = remove_redundant_branches(&p);
        assert!(equivalent(&p, &r));
        assert_eq!(r.to_string(), "a[b]/d");
    }

    #[test]
    fn redundant_branches_lists_witnesses() {
        let p = pat("a[b][b/c][z]/d");
        let reds = redundant_branches(&p);
        assert_eq!(reds.len(), 1);
        // The redundant one is the bare b.
        let n = reds[0];
        assert_eq!(p.test(n), xpv_pattern::NodeTest::label("b"));
        assert!(p.is_leaf(n));
    }

    #[test]
    fn linear_patterns_are_trivially_non_redundant() {
        for s in ["a", "a/b//c", "*//*/*"] {
            assert!(is_non_redundant(&pat(s)));
            assert!(remove_redundant_branches(&pat(s)).structurally_eq(&pat(s)));
        }
    }

    #[test]
    fn reduction_is_idempotent() {
        let p = pat("a[b][b/c][*][.//c]/d");
        let r1 = remove_redundant_branches(&p);
        let r2 = remove_redundant_branches(&r1);
        assert!(r1.structurally_eq(&r2));
        assert!(equivalent(&p, &r1));
    }
}
