//! Containment and equivalence (Definitions 2.2 and 2.3).
//!
//! * `P1 ⊑ P2` ([`contained`]): `P1(t) ⊆ P2(t)` for all trees `t`;
//! * `P1 ⊑w P2` ([`weakly_contained`]): `P1^w(t) ⊆ P2^w(t)` for all `t`;
//! * equivalence / weak equivalence are two-sided containments.
//!
//! The decision procedure is staged:
//!
//! 1. **Homomorphism fast path** (PTIME, sound for the full fragment,
//!    complete for the three sub-fragments): a homomorphism `P2 → P1`
//!    witnesses containment immediately.
//! 2. **Canonical-model test** (the coNP-complete procedure of \[14\], used by
//!    the paper in Section 2.2): `P1 ⊑ P2` iff for every canonical model
//!    `t` of `P1` with per-edge expansions bounded by
//!    [`expansion_bound`]`(P2)`, the canonical output of `t` is an answer of
//!    `P2` on `t`. A counter-model is a certificate of non-containment.
//!
//! Weak containment uses the identity `P1 ⊑w P2 ⟺ ∀u: P1(u) ⊆ P2^w(u)`
//! (a weak embedding into `t` is a strong embedding into a subtree of `t`),
//! so it runs the same canonical-model loop with weak embeddings of `P2`.

use crate::canonical::{expansion_bound, CanonicalModel, CanonicalModels};
use crate::embed::{embeds_with_output, weakly_embeds_with_output};
use crate::hom::{homomorphism_exists, HomMode};
use xpv_pattern::Pattern;

/// Tuning knobs for the containment procedure (exposed for the ablation
/// experiments; the defaults are what every other crate uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainmentOptions {
    /// Try the PTIME homomorphism witness before the canonical-model loop.
    pub hom_fast_path: bool,
    /// Override the per-edge expansion bound (for bound-robustness ablations).
    /// `None` uses [`expansion_bound`] of the containing pattern.
    pub bound_override: Option<usize>,
}

impl Default for ContainmentOptions {
    fn default() -> Self {
        ContainmentOptions { hom_fast_path: true, bound_override: None }
    }
}

/// The outcome of a containment check, with the evidence trail used by the
/// benchmark harness.
#[derive(Clone, Debug)]
pub struct ContainmentOutcome {
    /// Whether the containment holds.
    pub holds: bool,
    /// `true` if the homomorphism fast path settled it.
    pub via_homomorphism: bool,
    /// Canonical models examined by the complete test.
    pub models_checked: u64,
    /// A counter-model (canonical model of the left pattern on which the
    /// right pattern misses the output), when the containment fails.
    pub counter_model: Option<CanonicalModel>,
}

pub(crate) fn canonical_loop(
    p1: &Pattern,
    p2: &Pattern,
    bound: usize,
    weak: bool,
    outcome: &mut ContainmentOutcome,
) -> bool {
    for m in CanonicalModels::new(p1, bound) {
        outcome.models_checked += 1;
        let ok = if weak {
            weakly_embeds_with_output(p2, &m.tree, m.output)
        } else {
            embeds_with_output(p2, &m.tree, m.output)
        };
        if !ok {
            outcome.counter_model = Some(m);
            return false;
        }
    }
    true
}

/// Decides `p1 ⊑ p2` with full diagnostics.
pub fn contained_with(p1: &Pattern, p2: &Pattern, opts: &ContainmentOptions) -> ContainmentOutcome {
    let mut outcome = ContainmentOutcome {
        holds: false,
        via_homomorphism: false,
        models_checked: 0,
        counter_model: None,
    };
    if opts.hom_fast_path && homomorphism_exists(p2, p1, HomMode::RootAnchored) {
        outcome.holds = true;
        outcome.via_homomorphism = true;
        return outcome;
    }
    let bound = opts.bound_override.unwrap_or_else(|| expansion_bound(p2));
    outcome.holds = canonical_loop(p1, p2, bound, false, &mut outcome);
    outcome
}

/// Decides weak containment `p1 ⊑w p2` with full diagnostics.
pub fn weakly_contained_with(
    p1: &Pattern,
    p2: &Pattern,
    opts: &ContainmentOptions,
) -> ContainmentOutcome {
    let mut outcome = ContainmentOutcome {
        holds: false,
        via_homomorphism: false,
        models_checked: 0,
        counter_model: None,
    };
    // A free homomorphism p2 → p1 (output onto output) witnesses weak
    // containment: compose it with the strong embedding of p1 into the
    // subtree that realizes a weak embedding.
    if opts.hom_fast_path && homomorphism_exists(p2, p1, HomMode::Free) {
        outcome.holds = true;
        outcome.via_homomorphism = true;
        return outcome;
    }
    let bound = opts.bound_override.unwrap_or_else(|| expansion_bound(p2));
    outcome.holds = canonical_loop(p1, p2, bound, true, &mut outcome);
    outcome
}

/// `p1 ⊑ p2` with default options.
///
/// One-shot entry point: runs the staged procedure directly, with no
/// memoization overhead — verdict-identical to asking a fresh
/// [`crate::ContainmentOracle`] (the oracle runs this same procedure on a
/// memo miss). Components that decide containment repeatedly should hold a
/// long-lived oracle instead so verdicts are shared across calls.
pub fn contained(p1: &Pattern, p2: &Pattern) -> bool {
    contained_with(p1, p2, &ContainmentOptions::default()).holds
}

/// `p1 ⊑w p2` with default options (one-shot; see [`contained`]).
pub fn weakly_contained(p1: &Pattern, p2: &Pattern) -> bool {
    weakly_contained_with(p1, p2, &ContainmentOptions::default()).holds
}

/// `p1 ≡ p2` (two-sided containment; one-shot, see [`contained`]).
pub fn equivalent(p1: &Pattern, p2: &Pattern) -> bool {
    contained(p1, p2) && contained(p2, p1)
}

/// `p1 ≡w p2` (two-sided weak containment; one-shot, see [`contained`]).
pub fn weakly_equivalent(p1: &Pattern, p2: &Pattern) -> bool {
    weakly_contained(p1, p2) && weakly_contained(p2, p1)
}

/// Equivalence where either side may be the empty pattern `Υ`
/// (`None`). `Υ ≡ Υ`, and `Υ` is never equivalent to a (satisfiable)
/// pattern — every nonempty pattern has a canonical model.
pub fn equivalent_opt(p1: Option<&Pattern>, p2: Option<&Pattern>) -> bool {
    match (p1, p2) {
        (None, None) => true,
        (Some(a), Some(b)) => equivalent(a, b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpv_pattern::parse_xpath;

    fn pat(s: &str) -> Pattern {
        parse_xpath(s).expect("pattern parses")
    }

    fn c(a: &str, b: &str) -> bool {
        contained(&pat(a), &pat(b))
    }

    #[test]
    fn reflexive_and_basic() {
        for s in ["a", "a//b", "a[*]//b/*", "*[x]//y"] {
            assert!(c(s, s), "{s}");
        }
        assert!(c("a/b/c", "a//c"));
        assert!(!c("a//c", "a/b/c"));
        assert!(c("a/b", "a/*"));
        assert!(!c("a/*", "a/b"));
    }

    #[test]
    fn branch_containment() {
        assert!(c("a[b][c]/d", "a[b]/d"));
        assert!(!c("a[b]/d", "a[b][c]/d"));
        // Deeper branch requirements.
        assert!(c("a[b/c]/d", "a[b]/d"));
        assert!(!c("a[b]/d", "a[b/c]/d"));
    }

    #[test]
    fn miklau_suciu_interaction_case() {
        // The classic non-homomorphism containment from [14] (Fig. 4 there):
        // p = a[b[c]][b[d]] // *-free variant has a hom, but the wildcard
        // interplay needs the canonical test. Here: a//*[b] vs a//*//b etc.
        // P1 = a/*/b  ⊑  P2 = a/*/*? depths differ so not comparable; use:
        assert!(c("a/*/b", "a//b"));
        assert!(!c("a//b", "a/*/b"));
    }

    #[test]
    fn containment_not_witnessed_by_homomorphism() {
        // Miklau–Suciu's celebrated example (JACM 2004, Figure 6, adapted to
        // our output convention): containment holds but no homomorphism
        // exists. P1 = a[.//b[c/*]][b[*/d]]  ⊑  P2 = a[.//b[c/*][*/d]]? That
        // containment does NOT hold; the true one is:
        //   P1 = a[b[c/*]][b[*/d]] ... still no.
        // We use the standard star-absorption instance instead:
        //   P1 = a/b[.//c]    P2 = a/*[.//c]
        // has a homomorphism; a genuinely hom-free containment is
        //   P1 = a//b   ⊑   P2 = a//*  -- hom exists too.
        // The simplest verified hom-gap in this fragment:
        //   P1 = a[x/y][x/z]   P2 = a[x[y][z]] does not hold. So instead we
        // check the two directions around *-chains where homs do exist but
        // the canonical path is exercised by disabling the fast path.
        let opts = ContainmentOptions { hom_fast_path: false, bound_override: None };
        let out = contained_with(&pat("a/b/c"), &pat("a//c"), &opts);
        assert!(out.holds);
        assert!(!out.via_homomorphism);
        assert!(out.models_checked >= 1);
    }

    #[test]
    fn counter_model_is_reported() {
        let opts = ContainmentOptions::default();
        let out = contained_with(&pat("a//c"), &pat("a/b/c"), &opts);
        assert!(!out.holds);
        let cm = out.counter_model.expect("counter model");
        // The counter model is a model of the left but its output is not an
        // answer of the right.
        assert!(crate::embed::evaluate(&pat("a//c"), &cm.tree).contains(&cm.output));
        assert!(!crate::embed::evaluate(&pat("a/b/c"), &cm.tree).contains(&cm.output));
    }

    #[test]
    fn equivalence_basics() {
        assert!(equivalent(&pat("a/b"), &pat("a/b")));
        assert!(!equivalent(&pat("a/b"), &pat("a//b")));
        // Sibling order is irrelevant.
        assert!(equivalent(&pat("a[b][c]/d"), &pat("a[c][b]/d")));
        // Redundant branch: a[b][b/c] ≡ a[b/c].
        assert!(equivalent(&pat("a[b][b/c]/d"), &pat("a[b/c]/d")));
    }

    #[test]
    fn star_slash_star_equivalences() {
        // a/*//e ≡ a//*/e: both say "an e at depth ≥ 2 below a" (with output e).
        assert!(equivalent(&pat("a/*//e"), &pat("a//*/e")));
        // But a/*/e is strictly stronger.
        assert!(contained(&pat("a/*/e"), &pat("a//*/e")));
        assert!(!contained(&pat("a//*/e"), &pat("a/*/e")));
    }

    #[test]
    fn figure2_candidate_gap() {
        // Our reconstructed Figure 1/2 instance: V = a[b]/*, P = a[b]//*/e[d].
        // P>=1 composed with V is a[b]/*/e[d], NOT equivalent to P;
        // the relaxed candidate composes to a[b]/*//e[d], which IS.
        assert!(!equivalent(&pat("a[b]/*/e[d]"), &pat("a[b]//*/e[d]")));
        assert!(equivalent(&pat("a[b]/*//e[d]"), &pat("a[b]//*/e[d]")));
    }

    #[test]
    fn weak_containment_shifts_roots() {
        // b/c ⊑w a/b/c? Left weak outputs: c under any b. Right weak outputs:
        // c under b under a... no wait: weak embeddings of a/b/c anchor a
        // anywhere; left b/c anchors b anywhere. A tree with b/c but no a
        // above: left produces c, right produces nothing. So not weakly cont.
        assert!(!weakly_contained(&pat("b/c"), &pat("a/b/c")));
        // The other way: any weak a/b/c output is a weak b/c output.
        assert!(weakly_contained(&pat("a/b/c"), &pat("b/c")));
        // Strong containment of incomparable-root patterns fails while weak
        // holds: P1 = a/b/c vs P2 = b/c strongly: embeddings of P1 map root a,
        // of P2 root b — strong containment fails at the root.
        assert!(!contained(&pat("a/b/c"), &pat("b/c")));
    }

    #[test]
    fn weak_equivalence_is_coarser() {
        // P ≡ Q implies P ≡w Q (Section 2.2).
        let p = pat("a[b][b/c]/d");
        let q = pat("a[b/c]/d");
        assert!(equivalent(&p, &q));
        assert!(weakly_equivalent(&p, &q));
        // Weakly equivalent but not equivalent: *//e vs */e?? No...
        // The paper's canonical source of weak-equivalence collapses is root
        // relaxation of all-wildcard spines: */*//e and *//*/e and *//*//e?
        // */*//e ≡w *//*/e? Both weakly produce "e with ≥2 ancestors".
        assert!(weakly_equivalent(&pat("*/*//e"), &pat("*//*/e")));
        assert!(equivalent(&pat("*/*//e"), &pat("*//*/e")));
        // A genuine gap: Q = */e vs Q' = *//e... weak: "e child of something"
        // vs "e proper desc of something" = "e has an ancestor chain >= 1" —
        // same sets? e child of x: weak *//e picks x=parent: yes. e desc of x
        // at distance 2: weak */e picks the parent as root image: yes! So
        // weakly equivalent, but NOT equivalent (*/e pins e at depth 1).
        assert!(weakly_equivalent(&pat("*/e"), &pat("*//e")));
        assert!(!equivalent(&pat("*/e"), &pat("*//e")));
    }

    #[test]
    fn equivalent_opt_handles_empty() {
        assert!(equivalent_opt(None, None));
        assert!(!equivalent_opt(Some(&pat("a")), None));
        assert!(!equivalent_opt(None, Some(&pat("a"))));
        assert!(equivalent_opt(Some(&pat("a/b")), Some(&pat("a/b"))));
    }

    #[test]
    fn bound_robustness_spot_check() {
        // Raising the expansion bound never changes the verdict.
        let pairs =
            [("a/*//e", "a//*/e"), ("a//b", "a/*/b"), ("*[a]//b", "*//b"), ("a[*/c]//d", "a//d")];
        for (l, r) in pairs {
            let base = contained(&pat(l), &pat(r));
            let opts = ContainmentOptions {
                hom_fast_path: false,
                bound_override: Some(expansion_bound(&pat(r)) + 2),
            };
            assert_eq!(contained_with(&pat(l), &pat(r), &opts).holds, base, "{l} vs {r}");
        }
    }

    #[test]
    fn prop31_weak_equivalence_implies_same_depth() {
        // Sanity for Proposition 3.1(1) on a worked pair.
        let p1 = pat("a//b/c");
        let p2 = pat("a//*/c");
        if weakly_equivalent(&p1, &p2) {
            assert_eq!(p1.depth(), p2.depth());
        }
    }
}
