//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), [`any`],
//! [`prop_oneof!`], [`Just`], the [`Strategy`] trait, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is **no shrinking and no persistence**:
//! cases are generated from a fixed per-case seed, so every run of a test
//! explores exactly the same inputs (failures reproduce by construction,
//! which replaces the regression-file mechanism). The case count comes from
//! [`ProptestConfig::with_cases`], matching the upstream meaning.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Just, ProptestConfig,
        Strategy, TestCaseError, Union,
    };
}

/// Error produced by `prop_assert!` failures inside a test case body.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// The always-`value` strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical uniform strategy (the `any::<T>()` entry point).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among same-typed strategies (built by [`prop_oneof!`]).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// A union over `options` (must be nonempty).
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// The per-case RNG: derived from the property name hash and case index so
/// each property walks its own deterministic input sequence.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0xA5A5_5A5A_D00D_F00D)
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($strategy),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)*)
            )));
        }
    }};
}

/// The property-test declaration macro.
///
/// Supports the upstream shape used here: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]`-attributed
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}
