//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this in-tree shim provides
//! exactly the surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_bool` /
//! `gen_range` over `usize`/`u64` ranges.
//!
//! The generator is **not** the upstream StdRng (ChaCha12); it is a
//! xoshiro256** seeded through SplitMix64 — more than adequate for workload
//! generation, and fully deterministic per seed, which is all the experiment
//! harness requires. Streams differ from upstream `rand`, so regenerated
//! fixtures are stable only within this workspace.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value, given a source of random 64-bit words.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

#[inline]
fn uniform_below(next: &mut dyn FnMut() -> u64, n: u64) -> u64 {
    debug_assert!(n > 0, "empty range");
    // Lemire-style rejection-free-enough reduction; the modulo bias for
    // workload-sized ranges (n « 2^64) is negligible, and determinism is
    // what actually matters here.
    next() % n
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(next, span) as usize
    }
}

impl SampleRange for core::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + uniform_below(next, (hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(next, self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + uniform_below(next, hi.wrapping_sub(lo).wrapping_add(1).max(1))
    }
}

impl SampleRange for core::ops::Range<i32> {
    type Output = i32;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + uniform_below(next, span) as i64) as i32
    }
}

impl SampleRange for core::ops::RangeInclusive<i32> {
    type Output = i32;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi as i64 - lo as i64) as u64 + 1;
        (lo as i64 + uniform_below(next, span) as i64) as i32
    }
}

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (panics unless `0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform draw from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (SplitMix64-expanded seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = r.gen_range(5..=5usize);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
