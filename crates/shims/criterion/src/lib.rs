//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access; this shim implements the
//! subset of criterion's API the workspace benches use (`criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! `sample_size` / `throughput` / `bench_with_input`) on top of a simple
//! wall-clock loop: a short warm-up, then timed batches whose mean / min are
//! printed in a criterion-like one-line format.
//!
//! It intentionally does **no** statistics, HTML reports, or baselines; the
//! numbers are honest means, good enough for the relative comparisons the
//! EXPERIMENTS tables make. Swap the real criterion back in by deleting the
//! `[patch]`-style path dependency once a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark (soft cap).
const TARGET_TOTAL: Duration = Duration::from_millis(400);
const WARMUP_ITERS: u64 = 2;

/// A timing loop handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher { samples: Vec::new(), sample_size }
    }

    /// Times `f`, criterion-style: warm-up iterations first, then up to
    /// `sample_size` timed iterations bounded by the total budget.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TARGET_TOTAL {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<50} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            self.samples.len()
        );
    }

    /// Mean duration of the collected samples (used by harness front-ends
    /// that export machine-readable summaries).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Just the parameter (the group name prefixes it).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Throughput annotation (recorded, displayed as elements/sec where given).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput (accepted for API parity).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (no-op; groups flush eagerly).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 20, criterion: self }
    }

    /// Benchmarks a single closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(name);
        self
    }

    /// Accepted for API parity with `criterion_main!`'s expansion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
