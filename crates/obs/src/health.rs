//! The health watchdog: heartbeats, declarative per-tick rules, and
//! tail-based trace capture.
//!
//! A metrics snapshot can show a stall only as an *absence* (a counter
//! that stopped moving); this module makes absences first-class:
//!
//! - [`Heartbeat`] is a pair of gauges an operation bumps —
//!   `xpv_hb_<name>_inflight` while the operation runs and
//!   `xpv_hb_<name>_beats` on completion. A wedged operation is then
//!   *visible*: inflight > 0 with beats frozen across sampler ticks.
//! - [`HealthRule`] is the declarative judgment: [`HealthRule::heartbeat_stall`]
//!   fires when a heartbeat shows no progress for N consecutive ticks;
//!   [`HealthRule::slo_burn`] fires when a phase histogram's *interval*
//!   quantile (per-tick, from the history sampler) exceeds a threshold in
//!   too many of the last W ticks — a burn rate, not a single blip.
//! - [`Health`] evaluates the rules each tick (driven by the sampler).
//!   A firing rule increments its own `xpv_alert_<rule>_total` counter
//!   plus the `xpv_alerts_total` roll-up (`xpv_alert_stall_total` too,
//!   for heartbeat rules), and — the tail-based-sampling move — **forces
//!   trace sampling to always-on** so the trace rings fill with exactly
//!   the slow period's spans. When every rule has been quiet for the
//!   cooldown window the previous sampling knob is restored.
//!
//! All alert instruments are pre-registered at construction so they
//! expose as zeros before anything fires (dashboards can alert on the
//! counter existing *and* moving, not on its first appearance).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::history::TickObservation;
use crate::metrics::{Counter, Gauge, Registry};
use crate::trace::{set_trace_sampling, trace_sampling};

/// Default quiet ticks before forced always-on sampling is released
/// (30 s at the default 1 s sampler interval).
pub const DEFAULT_COOLDOWN_TICKS: u32 = 30;

/// A liveness instrument: `begin` marks an operation in flight, the
/// returned guard beats on drop (panic-safe — an unwound operation still
/// beats, a *wedged* one does not, which is exactly the signal).
/// Cheap to clone; both gauges live in the registry as
/// `xpv_hb_<name>_inflight` / `xpv_hb_<name>_beats`.
#[derive(Clone, Debug)]
pub struct Heartbeat {
    inflight: Arc<Gauge>,
    beats: Arc<Gauge>,
}

impl Heartbeat {
    pub fn new(registry: &Registry, name: &str) -> Heartbeat {
        Heartbeat {
            inflight: registry.gauge(&format!("xpv_hb_{name}_inflight")),
            beats: registry.gauge(&format!("xpv_hb_{name}_beats")),
        }
    }

    /// Marks an operation in flight; the guard beats when dropped.
    pub fn begin(&self) -> HeartbeatGuard {
        self.inflight.add(1);
        HeartbeatGuard { hb: self.clone() }
    }

    /// A bare beat with no inflight window — for loops that want to
    /// prove liveness per iteration without bracketing each step.
    pub fn beat_now(&self) {
        self.beats.add(1);
    }

    /// Completed beats so far (test/diagnostic readout).
    pub fn beats(&self) -> u64 {
        self.beats.value()
    }

    /// Operations currently in flight (test/diagnostic readout).
    pub fn inflight(&self) -> u64 {
        self.inflight.value()
    }
}

/// Beats its [`Heartbeat`] on drop (see [`Heartbeat::begin`]).
#[derive(Debug)]
pub struct HeartbeatGuard {
    hb: Heartbeat,
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.hb.inflight.sub(1);
        self.hb.beats.add(1);
    }
}

/// Which interval quantile an SLO rule judges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantile {
    P50,
    P90,
    P99,
}

impl Quantile {
    pub fn as_str(&self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P99 => "p99",
        }
    }
}

/// One declarative watchdog rule (see the module docs for semantics).
#[derive(Clone, Debug)]
pub enum HealthRule {
    /// Fires when heartbeat `heartbeat` shows work in flight but no beat
    /// for `max_stalled_ticks` consecutive ticks.
    HeartbeatStall { name: String, heartbeat: String, max_stalled_ticks: u32 },
    /// Fires when histogram `histogram`'s per-tick `quantile` exceeded
    /// `threshold_us` in at least `fire_at` of the last `window` ticks.
    SloBurn {
        name: String,
        histogram: String,
        quantile: Quantile,
        threshold_us: u64,
        window: u32,
        fire_at: u32,
    },
}

impl HealthRule {
    /// A stall rule over the heartbeat registered as
    /// `xpv_hb_<heartbeat>_*`, named `<heartbeat>_stall`.
    pub fn heartbeat_stall(heartbeat: &str, max_stalled_ticks: u32) -> HealthRule {
        HealthRule::HeartbeatStall {
            name: format!("{heartbeat}_stall"),
            heartbeat: heartbeat.to_string(),
            max_stalled_ticks: max_stalled_ticks.max(1),
        }
    }

    /// An SLO burn-rate rule over `histogram` (full metric name, e.g.
    /// `xpv_phase_eval_us`), named `<name>`.
    pub fn slo_burn(
        name: &str,
        histogram: &str,
        quantile: Quantile,
        threshold_us: u64,
        window: u32,
        fire_at: u32,
    ) -> HealthRule {
        HealthRule::SloBurn {
            name: name.to_string(),
            histogram: histogram.to_string(),
            quantile,
            threshold_us,
            window: window.max(1),
            fire_at: fire_at.clamp(1, window.max(1)),
        }
    }

    pub fn name(&self) -> &str {
        match self {
            HealthRule::HeartbeatStall { name, .. } => name,
            HealthRule::SloBurn { name, .. } => name,
        }
    }

    /// Short kind tag for dumps and the wire frame.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthRule::HeartbeatStall { .. } => "heartbeat_stall",
            HealthRule::SloBurn { .. } => "slo_burn",
        }
    }
}

/// One rule's externally visible state (dump / wire payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alert {
    /// Rule name (`xpv_alert_<name>_total` is its counter).
    pub name: String,
    /// Rule kind tag (`heartbeat_stall` | `slo_burn`).
    pub kind: String,
    /// Firing as of the last evaluated tick.
    pub firing: bool,
    /// Tick the current firing streak started at (0 = never fired).
    pub since_tick: u64,
    /// Ticks this rule has fired over its lifetime.
    pub fired_total: u64,
    /// Human-readable evidence from the last firing evaluation.
    pub detail: String,
}

struct RuleState {
    rule: HealthRule,
    counter: Arc<Counter>,
    firing: bool,
    since_tick: u64,
    fired_total: u64,
    detail: String,
    /// HeartbeatStall: beats gauge at the previous tick.
    last_beats: Option<u64>,
    /// HeartbeatStall: consecutive no-progress ticks with work in flight.
    stalled_ticks: u32,
    /// SloBurn: breach flags for the last `window` ticks.
    breaches: VecDeque<bool>,
}

struct HealthInner {
    rules: Vec<RuleState>,
    /// Quiet ticks remaining before forced sampling is released.
    cooldown_left: u32,
    /// The sampling knob to restore, captured when forcing began.
    saved_sampling: Option<u32>,
}

/// The watchdog: owns the rules, the alert instruments, and the forced
/// trace-sampling state machine. Driven by the sampler's tick; see the
/// module docs.
pub struct Health {
    registry: Arc<Registry>,
    alerts_total: Arc<Counter>,
    stall_total: Arc<Counter>,
    firing_gauge: Arc<Gauge>,
    forced_gauge: Arc<Gauge>,
    cooldown_ticks: u32,
    inner: Mutex<HealthInner>,
}

impl Health {
    /// Builds the watchdog over `rules`; every alert instrument (the
    /// roll-ups and one `xpv_alert_<rule>_total` per rule) is created in
    /// `registry` immediately so it exposes as zero.
    pub fn new(registry: Arc<Registry>, rules: Vec<HealthRule>, cooldown_ticks: u32) -> Health {
        let states = rules
            .into_iter()
            .map(|rule| RuleState {
                counter: registry.counter(&format!("xpv_alert_{}_total", rule.name())),
                rule,
                firing: false,
                since_tick: 0,
                fired_total: 0,
                detail: String::new(),
                last_beats: None,
                stalled_ticks: 0,
                breaches: VecDeque::new(),
            })
            .collect();
        Health {
            alerts_total: registry.counter("xpv_alerts_total"),
            stall_total: registry.counter("xpv_alert_stall_total"),
            firing_gauge: registry.gauge("xpv_alert_firing"),
            forced_gauge: registry.gauge("xpv_alert_trace_forced"),
            registry,
            cooldown_ticks: cooldown_ticks.max(1),
            inner: Mutex::new(HealthInner {
                rules: states,
                cooldown_left: 0,
                saved_sampling: None,
            }),
        }
    }

    /// Evaluates every rule against one tick's observation (called by
    /// the sampler after recording history). Updates alert counters and
    /// the forced-sampling cooldown.
    pub fn evaluate(&self, obs: &TickObservation) {
        let mut inner = self.inner.lock().expect("health poisoned");
        let mut any_firing = false;
        let mut firing_count = 0u64;
        for state in inner.rules.iter_mut() {
            let (firing, detail) = judge(state, obs);
            if firing {
                any_firing = true;
                firing_count += 1;
                if !state.firing {
                    state.since_tick = obs.tick;
                }
                state.fired_total += 1;
                state.detail = detail;
                state.counter.inc();
                self.alerts_total.inc();
                if matches!(state.rule, HealthRule::HeartbeatStall { .. }) {
                    self.stall_total.inc();
                }
            }
            state.firing = firing;
        }
        self.firing_gauge.set(firing_count);
        if any_firing {
            // Tail-based sampling: capture the slow period's spans in
            // full. Save the operator's knob once, on the quiet→firing
            // edge, and re-arm the cooldown every firing tick.
            if inner.saved_sampling.is_none() {
                inner.saved_sampling = Some(trace_sampling());
                set_trace_sampling(1);
                self.forced_gauge.set(1);
            }
            inner.cooldown_left = self.cooldown_ticks;
        } else if let Some(saved) = inner.saved_sampling {
            inner.cooldown_left = inner.cooldown_left.saturating_sub(1);
            if inner.cooldown_left == 0 {
                set_trace_sampling(saved);
                inner.saved_sampling = None;
                self.forced_gauge.set(0);
            }
        }
    }

    /// Every rule's current state, in registration order.
    pub fn alerts(&self) -> Vec<Alert> {
        let inner = self.inner.lock().expect("health poisoned");
        inner
            .rules
            .iter()
            .map(|s| Alert {
                name: s.rule.name().to_string(),
                kind: s.rule.kind().to_string(),
                firing: s.firing,
                since_tick: s.since_tick,
                fired_total: s.fired_total,
                detail: s.detail.clone(),
            })
            .collect()
    }

    /// Whether the watchdog is currently forcing always-on sampling.
    pub fn trace_forced(&self) -> bool {
        self.inner.lock().expect("health poisoned").saved_sampling.is_some()
    }

    /// The registry the alert instruments live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl std::fmt::Debug for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Health")
            .field("rules", &self.inner.lock().expect("health poisoned").rules.len())
            .field("cooldown_ticks", &self.cooldown_ticks)
            .finish()
    }
}

/// One rule, one tick: returns (firing, detail).
fn judge(state: &mut RuleState, obs: &TickObservation) -> (bool, String) {
    match &state.rule {
        HealthRule::HeartbeatStall { heartbeat, max_stalled_ticks, .. } => {
            let inflight =
                obs.gauges.get(&format!("xpv_hb_{heartbeat}_inflight")).copied().unwrap_or(0);
            let beats = obs.gauges.get(&format!("xpv_hb_{heartbeat}_beats")).copied().unwrap_or(0);
            let progressed = state.last_beats != Some(beats);
            let known = state.last_beats.is_some();
            state.last_beats = Some(beats);
            if known && !progressed && inflight > 0 {
                state.stalled_ticks += 1;
            } else {
                state.stalled_ticks = 0;
            }
            if state.stalled_ticks >= *max_stalled_ticks {
                (
                    true,
                    format!(
                        "{inflight} in flight, no beat for {} ticks (beats={beats})",
                        state.stalled_ticks
                    ),
                )
            } else {
                (false, String::new())
            }
        }
        HealthRule::SloBurn { histogram, quantile, threshold_us, window, fire_at, .. } => {
            let observed =
                obs.intervals.get(histogram).filter(|s| s.count > 0).map(|s| match quantile {
                    Quantile::P50 => s.p50,
                    Quantile::P90 => s.p90,
                    Quantile::P99 => s.p99,
                });
            let breached = observed.is_some_and(|v| v > *threshold_us);
            state.breaches.push_back(breached);
            while state.breaches.len() > *window as usize {
                state.breaches.pop_front();
            }
            let hits = state.breaches.iter().filter(|b| **b).count() as u32;
            if hits >= *fire_at {
                (
                    true,
                    format!(
                        "{histogram} {} > {threshold_us}us in {hits}/{} ticks (last={})",
                        quantile.as_str(),
                        state.breaches.len(),
                        observed.unwrap_or(0)
                    ),
                )
            } else {
                (false, String::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::snapshot::MetricsSnapshot;
    use crate::trace::tests_support::trace_lock;

    /// Records one tick of the registry into `history` and evaluates.
    fn tick(registry: &Arc<Registry>, history: &History, health: &Health) {
        let obs = history.record_tick(&registry.snapshot(), &registry.histograms_raw());
        health.evaluate(&obs);
    }

    fn alert_count(registry: &Registry, name: &str) -> u64 {
        registry.counter(name).value()
    }

    #[test]
    fn heartbeat_guard_beats_even_on_unwind() {
        let registry = Registry::new();
        let hb = Heartbeat::new(&registry, "t");
        {
            let _g = hb.begin();
            assert_eq!(hb.inflight(), 1);
        }
        assert_eq!((hb.inflight(), hb.beats()), (0, 1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = hb.begin();
            panic!("unwind");
        }));
        assert!(result.is_err());
        assert_eq!((hb.inflight(), hb.beats()), (0, 2), "unwound op still beats");
    }

    #[test]
    fn stall_rule_fires_on_frozen_inflight_heartbeat_and_clears() {
        let _guard = trace_lock();
        let registry = Arc::new(Registry::new());
        let hb = Heartbeat::new(&registry, "maintain");
        let history = History::new(32);
        let health =
            Health::new(Arc::clone(&registry), vec![HealthRule::heartbeat_stall("maintain", 2)], 3);

        // Healthy traffic: begin/end between ticks — never fires.
        for _ in 0..4 {
            drop(hb.begin());
            tick(&registry, &history, &health);
        }
        assert_eq!(alert_count(&registry, "xpv_alert_maintain_stall_total"), 0);

        // Wedge: in flight, beats frozen. The healthy ticks already
        // established the beat baseline, so the stall is observed from
        // the first wedged tick and fires on the second.
        let wedged = hb.begin();
        tick(&registry, &history, &health);
        assert_eq!(alert_count(&registry, "xpv_alert_stall_total"), 0, "below threshold");
        tick(&registry, &history, &health);
        assert_eq!(alert_count(&registry, "xpv_alert_maintain_stall_total"), 1, "fires at 2 ticks");
        assert_eq!(alert_count(&registry, "xpv_alert_stall_total"), 1);
        assert_eq!(alert_count(&registry, "xpv_alerts_total"), 1);
        let alerts = health.alerts();
        assert!(alerts[0].firing, "alert visible: {alerts:?}");
        assert!(alerts[0].detail.contains("no beat"), "detail: {}", alerts[0].detail);

        // Unwedge: the beat advances, the rule clears.
        drop(wedged);
        tick(&registry, &history, &health);
        assert!(!health.alerts()[0].firing);
        assert_eq!(registry.gauge("xpv_alert_firing").value(), 0);
    }

    #[test]
    fn idle_heartbeat_never_fires() {
        let _guard = trace_lock();
        let registry = Arc::new(Registry::new());
        let _hb = Heartbeat::new(&registry, "flush");
        let history = History::new(32);
        let health =
            Health::new(Arc::clone(&registry), vec![HealthRule::heartbeat_stall("flush", 1)], 3);
        for _ in 0..10 {
            tick(&registry, &history, &health);
        }
        assert_eq!(alert_count(&registry, "xpv_alerts_total"), 0, "idle is not a stall");
    }

    #[test]
    fn slo_burn_fires_on_sustained_interval_breach_only() {
        let _guard = trace_lock();
        let registry = Arc::new(Registry::new());
        let hist = registry.histogram("xpv_phase_eval_us");
        let history = History::new(32);
        let health = Health::new(
            Arc::clone(&registry),
            vec![HealthRule::slo_burn("eval_slo", "xpv_phase_eval_us", Quantile::P99, 1_000, 4, 2)],
            3,
        );

        // One slow tick out of four: under the burn threshold.
        hist.record(50_000);
        tick(&registry, &history, &health);
        for _ in 0..3 {
            hist.record(10);
            tick(&registry, &history, &health);
        }
        assert_eq!(alert_count(&registry, "xpv_alert_eval_slo_total"), 0, "a blip is not a burn");

        // Two slow ticks inside the window: fires.
        hist.record(50_000);
        tick(&registry, &history, &health);
        hist.record(50_000);
        tick(&registry, &history, &health);
        assert!(alert_count(&registry, "xpv_alert_eval_slo_total") >= 1, "sustained breach fires");
        assert!(health.alerts()[0].detail.contains("xpv_phase_eval_us"), "evidence in detail");
        // Stall roll-up untouched: this is not a heartbeat rule.
        assert_eq!(alert_count(&registry, "xpv_alert_stall_total"), 0);
    }

    #[test]
    fn firing_forces_always_on_sampling_then_cooldown_restores() {
        let _guard = trace_lock();
        set_trace_sampling(64);
        let registry = Arc::new(Registry::new());
        let hb = Heartbeat::new(&registry, "w");
        let history = History::new(32);
        let health =
            Health::new(Arc::clone(&registry), vec![HealthRule::heartbeat_stall("w", 1)], 2);

        let wedged = hb.begin();
        tick(&registry, &history, &health); // baseline
        tick(&registry, &history, &health); // stalled 1 tick → fires
        assert_eq!(trace_sampling(), 1, "firing forces always-on");
        assert!(health.trace_forced());
        assert_eq!(registry.gauge("xpv_alert_trace_forced").value(), 1);

        // Recovery: cooldown of 2 quiet ticks, then the knob restores.
        drop(wedged);
        tick(&registry, &history, &health);
        assert_eq!(trace_sampling(), 1, "still in cooldown");
        tick(&registry, &history, &health);
        assert_eq!(trace_sampling(), 64, "cooldown elapsed, knob restored");
        assert!(!health.trace_forced());
        assert_eq!(registry.gauge("xpv_alert_trace_forced").value(), 0);
        set_trace_sampling(crate::trace::DEFAULT_TRACE_SAMPLING);
    }

    #[test]
    fn alert_instruments_exist_before_any_firing() {
        let registry = Arc::new(Registry::new());
        let _health = Health::new(
            Arc::clone(&registry),
            vec![HealthRule::heartbeat_stall("maintain", 5)],
            DEFAULT_COOLDOWN_TICKS,
        );
        let snap = registry.snapshot();
        for name in ["xpv_alerts_total", "xpv_alert_stall_total", "xpv_alert_maintain_stall_total"]
        {
            assert!(snap.get(name).is_some(), "{name} pre-registered");
        }
        assert!(snap.get("xpv_alert_firing").is_some());
        let _ = MetricsSnapshot::new();
    }
}
