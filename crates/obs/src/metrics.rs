//! The lock-free metric primitives and the named [`Registry`].
//!
//! Three instrument kinds, all built on relaxed `AtomicU64`s:
//!
//! - [`Counter`] — a monotone count, **striped** across cache-line-aligned
//!   atomics so concurrent writers on different cores do not bounce one
//!   line. Each thread is assigned a stripe round-robin on first use;
//!   [`Counter::value`] sums the stripes.
//! - [`Gauge`] — a last-write-wins level (live connections, window size).
//! - [`Histogram`] — a log-bucketed latency distribution: bucket `i ≥ 1`
//!   holds values in `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly `0`), so
//!   a [`Histogram::record`] is three relaxed atomic RMWs (bucket, sum,
//!   max) with no locks and no allocation — cheap enough for the fused
//!   eval hot path. Percentile readout walks the cumulative bucket counts
//!   and reports the rank bucket's upper bound (clamped to the observed
//!   max), so a reported pXX is never below the true order statistic and
//!   at most 2× above it.
//!
//! The [`Registry`] is a string-named get-or-create table of the three
//! kinds. Lookup takes a shared read lock (a write lock only on a name's
//! first appearance), and callers are expected to look a handle up once
//! and hold the `Arc` — the hot path then never touches the registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::snapshot::{HistogramSummary, MetricsSnapshot};

/// Stripes per [`Counter`] (a power of two).
pub const COUNTER_STRIPES: usize = 16;

/// Number of histogram buckets: `{0}` plus one power-of-two bucket per
/// bit position up to `2^(HIST_BUCKETS-2)` — in microseconds that spans
/// past six days, so the last bucket is effectively "absurd outlier".
pub const HIST_BUCKETS: usize = 41;

/// One cache line of counter state (the alignment is the point: stripes
/// of one counter must not share a line, or striping buys nothing).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Round-robin stripe assignment: each thread gets a home stripe on first
/// use and keeps it for its lifetime.
fn stripe_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) & (COUNTER_STRIPES - 1);
    }
    SLOT.with(|s| *s)
}

/// A monotone counter striped across cache-line-aligned atomics (see the
/// module docs). `add` is one relaxed `fetch_add` on the calling thread's
/// home stripe; `value` sums all stripes (reads are snapshot-time only).
#[derive(Debug)]
pub struct Counter {
    stripes: Box<[Stripe]>,
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    pub fn new() -> Counter {
        Counter { stripes: (0..COUNTER_STRIPES).map(|_| Stripe::default()).collect() }
    }

    /// Adds `n` (relaxed; one atomic RMW).
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins level. Unlike [`Counter`] it is a single atomic:
/// gauges are set from one place (a server's accounting path), not
/// hammered from every worker.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement (a racing `sub` past zero floors, it does not
    /// wrap — gauges are diagnostics, not invariants).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in: `0 → 0`, otherwise the value's bit length
/// (so bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`), clamped to the last
/// bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (the last bucket is unbounded).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log-bucketed latency histogram (see the module docs for the bucket
/// scheme and the cost of a record).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation: three relaxed atomic RMWs, no locks.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in **microseconds** — the unit every latency
    /// histogram in this workspace uses (the `_us` naming suffix).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// A point-in-time copy of the distribution. Concurrent records may
    /// tear across bucket/sum/max (each is individually consistent), which
    /// is fine for diagnostics and benchmark deltas.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen [`Histogram`]: what percentile math and bucket-wise deltas
/// run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per bucket (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), reported as the rank bucket's
    /// upper bound clamped to the observed max: never below the true
    /// order statistic, at most 2× above it (power-of-two buckets).
    ///
    /// Edge cases are defined, not incidental: an **empty** histogram
    /// reads `0` for every `q`; an out-of-range `q` **clamps** to
    /// `[0, 1]` (so `q ≤ 0` is the minimum order statistic and `q ≥ 1`
    /// the maximum); a **NaN** `q` is treated as `0`.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (integer floor; zero when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Bucket-wise difference (`self - earlier`) for benchmark intervals.
    /// Counts and sums subtract saturating; `max` keeps `self`'s value
    /// (a maximum cannot be un-observed, so the interval max is only an
    /// upper bound — documented where benches report it).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// The six-number summary the wire frame and text exposition carry.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum,
            max: self.max,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// A named get-or-create table of [`Counter`]s, [`Gauge`]s, and
/// [`Histogram`]s (see the module docs for the locking discipline and
/// the naming scheme in the crate docs).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(table: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = table.read().expect("registry poisoned").get(name) {
        return Arc::clone(m);
    }
    let mut map = table.write().expect("registry poisoned");
    Arc::clone(map.entry(name.to_string()).or_default())
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created zeroed on first sight. Callers
    /// hold the returned `Arc`; the same name always yields the same
    /// instrument.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name` (get-or-create; see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name` (get-or-create; see
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Raw bucket snapshots of every registered histogram, sorted by
    /// name. Unlike [`Registry::snapshot`] (which pre-summarizes into
    /// six numbers), the raw buckets support interval math — the history
    /// sampler diffs consecutive snapshots with
    /// [`HistogramSnapshot::since`] to get per-tick percentiles.
    pub fn histograms_raw(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Every registered instrument as one [`MetricsSnapshot`], sorted by
    /// name (the `BTreeMap` order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, c) in self.counters.read().expect("registry poisoned").iter() {
            snap.push_counter(name.clone(), c.value());
        }
        for (name, g) in self.gauges.read().expect("registry poisoned").iter() {
            snap.push_gauge(name.clone(), g.value());
        }
        for (name, h) in self.histograms.read().expect("registry poisoned").iter() {
            snap.push_histogram(name.clone(), h.snapshot().summary());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_increments_sum_exactly() {
        // The linearity contract: 8 threads × 10_000 increments lose
        // nothing to striping.
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panic");
        }
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn gauge_set_add_sub_floor() {
        let g = Gauge::new();
        g.set(5);
        g.add(3);
        assert_eq!(g.value(), 8);
        g.sub(10);
        assert_eq!(g.value(), 0, "sub floors at zero");
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound stays in bucket {i}");
            assert_eq!(bucket_index(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn percentiles_bracket_a_sorted_vector_oracle() {
        // Deterministic pseudo-random values (an LCG; the crate has no
        // dependencies, shims included), checked against exact order
        // statistics: a histogram pXX is never below the true value and
        // at most 2× above it.
        let h = Histogram::new();
        let mut values: Vec<u64> = Vec::new();
        let mut state: u64 = 0x243F_6A88_85A3_08D3;
        for _ in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 33) % 1_000_000;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5_000);
        assert_eq!(snap.max, *values.last().expect("non-empty"));
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        for q in [0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = snap.percentile(q);
            assert!(approx >= exact, "p{q}: approx {approx} < exact {exact}");
            assert!(approx <= exact * 2 + 1, "p{q}: approx {approx} > 2x exact {exact}");
        }
        assert_eq!(snap.percentile(1.0), snap.max, "p100 is the exact max");
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.percentile(0.5), 0);
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn percentile_edge_cases_are_defined() {
        // Empty: zero for every q, including the weird ones.
        let empty = Histogram::new().snapshot();
        for q in [-1.0, 0.0, 0.5, 1.0, 7.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(empty.percentile(q), 0, "empty histogram, q={q}");
        }
        // Non-empty: out-of-range q clamps to [0, 1], NaN acts as 0.
        let h = Histogram::new();
        h.record(1);
        h.record(1000);
        let snap = h.snapshot();
        let min = snap.percentile(0.0);
        let max = snap.percentile(1.0);
        assert_eq!(snap.percentile(-3.0), min, "q below range clamps to the minimum");
        assert_eq!(snap.percentile(f64::NEG_INFINITY), min);
        assert_eq!(snap.percentile(42.0), max, "q above range clamps to the maximum");
        assert_eq!(snap.percentile(f64::INFINITY), max);
        assert_eq!(snap.percentile(f64::NAN), min, "NaN is treated as q = 0");
        assert_eq!(max, snap.max, "q = 1 is the exact observed max");
    }

    #[test]
    fn snapshot_since_isolates_an_interval() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let before = h.snapshot();
        h.record(1000);
        h.record(1000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum, 2000);
        assert_eq!(delta.percentile(0.5), delta.percentile(0.99));
    }

    #[test]
    fn registry_returns_the_same_instrument_for_a_name() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").value(), 5);
        r.histogram("h").record(7);
        assert_eq!(r.histogram("h").snapshot().count(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 2);
        assert_eq!(snap.samples[0].name, "a");
    }
}
