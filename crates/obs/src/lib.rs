//! `xpv-obs`: the unified observability layer — a lock-free metrics
//! registry, log-bucketed latency histograms, and sampled
//! request-lifecycle tracing. Dependency-free (std only), in the same
//! offline discipline as the rest of the workspace.
//!
//! ## What lives here
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — the instruments, all
//!   relaxed-atomic and lock-free on the record path (see
//!   [`metrics`] for the striping and bucket schemes).
//! - [`Registry`] — a string-named get-or-create table of instruments;
//!   callers look a handle up once and hold the `Arc`.
//! - [`Span`] / [`Phase`] / [`drain_trace_events`] — sampled per-request
//!   phase timelines recorded into per-thread rings (see [`trace`]).
//! - [`MetricsSnapshot`] — the frozen render form: every exposition
//!   surface (the `StatsResp` v2 wire frame, the `xpv stats` text
//!   output, the legacy stats structs' `Display` impls via
//!   [`write_kv_line`]) renders from it or from the same `visit`
//!   enumeration that fills it.
//! - [`History`] / [`Sampler`] — per-metric ring buffers fed by a
//!   background sampler thread: counter deltas, gauge levels, and
//!   per-tick histogram percentiles over a retained window (see
//!   [`history`]).
//! - [`Heartbeat`] / [`HealthRule`] / [`Health`] — liveness gauges and
//!   the per-tick watchdog that turns a stall or an SLO burn into
//!   `xpv_alert_*` counters and forced always-on trace capture (see
//!   [`health`]).
//!
//! The full metric catalogue — every family, the heartbeat gauges, and
//! the alert-rule semantics — is documented in `docs/METRICS.md` at the
//! repository root.
//!
//! ## Naming scheme
//!
//! Metric names are `snake_case` with an `xpv_` prefix and a family
//! segment naming the subsystem of record:
//!
//! | family | source | examples |
//! |---|---|---|
//! | `xpv_oracle_*` | containment oracle counters | `xpv_oracle_queries`, `xpv_oracle_canonical_runs` |
//! | `xpv_cache_*` | sharded cache counters | `xpv_cache_queries`, `xpv_cache_plan_memo_hits` |
//! | `xpv_tenant_*` | per-tenant counters, labeled `tenant="id"` | `xpv_tenant_queries{tenant="acme"}` |
//! | `xpv_maintain_*` | maintenance counters | `xpv_maintain_regions_scanned` |
//! | `xpv_net_*` | wire counters | `xpv_net_frames_in`, `xpv_net_credit_stalls` |
//! | `xpv_server_*` | serving-front-end gauges | `xpv_server_connections` |
//! | `xpv_phase_*_us` | latency histograms, microseconds | `xpv_phase_eval_us`, `xpv_phase_maintain_scan_us` |
//! | `xpv_hb_*` | heartbeat gauges (liveness) | `xpv_hb_maintain_inflight`, `xpv_hb_maintain_beats` |
//! | `xpv_alert_*`, `xpv_alerts_total` | watchdog alert counters/gauges | `xpv_alert_stall_total`, `xpv_alert_firing` |
//!
//! Every counter has **one** name: a number that reaches the snapshot
//! through one family is never re-exported under another (the
//! engine's `CacheStats` keeps its `oracle_*` mirror fields for API
//! compatibility, but the exposition emits those numbers only under
//! `xpv_oracle_*`).
//!
//! ## Sampling semantics
//!
//! Tracing is governed by one global knob, [`set_trace_sampling`]:
//! `0` = off, `1` = every request, `n` = one in `n` per thread
//! (default [`DEFAULT_TRACE_SAMPLING`] = 64). The decision is made once
//! per request at [`Span::begin`]; a span is either fully recorded or
//! free. Histograms are **not** sampled — every record lands.
//!
//! ## Overhead budget
//!
//! Measured on this repo's CI container (1–2 cores, release build;
//! reproduce with `xpv obs-bench`, archived as `BENCH_obs.json`):
//!
//! - disabled span (`Span::begin` + drop, sampling off): **~3 ns** —
//!   one relaxed atomic load and a branch (measured 3.4 ns/op);
//! - enabled histogram record: **~20 ns** — three relaxed atomic RMWs
//!   plus the bucket index (measured 20.1 ns/op);
//! - end-to-end, always-on tracing (`set_trace_sampling(1)`) on the Zipf
//!   serve mix is **within measurement noise** of tracing off (< 1% on a
//!   4000-query pass; the span cost is dwarfed by planning/eval). The CI
//!   gate on `BENCH_obs.json` fails the build past **10%**.

pub mod health;
pub mod history;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use health::{
    Alert, Health, HealthRule, Heartbeat, HeartbeatGuard, Quantile, DEFAULT_COOLDOWN_TICKS,
};
pub use history::{
    series_key, History, HistoryPoint, PointValue, Sampler, SamplerConfig, SeriesData, SeriesKind,
    TickObservation, WindowStats, DEFAULT_HISTORY_CAPACITY, DEFAULT_SAMPLE_INTERVAL,
};
pub use metrics::{
    bucket_index, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    COUNTER_STRIPES, HIST_BUCKETS,
};
pub use snapshot::{write_kv_line, HistogramSummary, MetricsSnapshot, Sample, SampleValue};
pub use trace::{
    drain_trace_events, set_trace_sampling, trace_ring_count, trace_sampling, Phase, Span,
    TraceEvent, DEFAULT_TRACE_SAMPLING, RING_CAPACITY,
};
