//! Time-series retention over the metric [`Registry`]: per-metric ring
//! buffers fed by a background [`Sampler`].
//!
//! A snapshot answers "what is the number now"; this module answers
//! "what did it do over the last few minutes". Each sampler tick walks a
//! full [`MetricsSnapshot`] (plus the registry's raw histograms) and
//! appends one [`HistoryPoint`] per metric to that metric's fixed-capacity
//! ring (default [`DEFAULT_HISTORY_CAPACITY`] points — at the default
//! 1 s interval, a bit over four minutes of retention):
//!
//! - **counters** record the tick-over-tick *delta* (the basis for rates);
//! - **gauges** record the *level* at the tick;
//! - **histograms** record the *interval* distribution — the sampler keeps
//!   the previous raw bucket snapshot per histogram and records the
//!   count/p50/p90/p99 of the ticks's observations only
//!   ([`HistogramSnapshot::since`]), so a long-healthy history cannot
//!   dilute a slow minute the way cumulative percentiles do.
//!
//! The ring keying is the *rendered* metric name (labels inlined, e.g.
//! `xpv_tenant_queries{tenant="acme"}`), which is also what the wire
//! history frame and `xpv top` display.
//!
//! [`Sampler`] owns the dedicated thread (configurable interval, default
//! [`DEFAULT_SAMPLE_INTERVAL`]), runs the [`Health`] watchdog rules after
//! every tick, and stops on [`Sampler::stop`] or drop. The tick cost is
//! one snapshot walk off the hot path — request threads never touch the
//! history lock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::health::{Health, HealthRule, DEFAULT_COOLDOWN_TICKS};
use crate::metrics::{HistogramSnapshot, Registry};
use crate::snapshot::{HistogramSummary, MetricsSnapshot, SampleValue};

/// Points kept per metric ring before the oldest is dropped.
pub const DEFAULT_HISTORY_CAPACITY: usize = 256;

/// Default sampler tick interval.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_secs(1);

/// Which instrument kind a history series tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    Counter,
    Gauge,
    Histogram,
}

/// One tick's value in a series (kind-dependent, see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointValue {
    /// Counter increment over the tick interval.
    Delta(u64),
    /// Gauge level at the tick.
    Level(u64),
    /// Interval histogram summary: observations recorded during the tick
    /// and the tick-local percentiles.
    Quantiles { count: u64, p50: u64, p90: u64, p99: u64 },
}

/// One recorded tick of one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryPoint {
    /// Microseconds since the history started, at the tick.
    pub at_us: u64,
    pub value: PointValue,
}

impl HistoryPoint {
    /// The point's headline number: the delta for counters, the level
    /// for gauges, the interval p99 for histograms — what sparklines and
    /// window statistics aggregate.
    pub fn headline(&self) -> u64 {
        match self.value {
            PointValue::Delta(v) | PointValue::Level(v) => v,
            PointValue::Quantiles { p99, .. } => p99,
        }
    }
}

/// A copied-out series: the ring's points, oldest first.
#[derive(Clone, Debug)]
pub struct SeriesData {
    /// Rendered metric key (labels inlined).
    pub name: String,
    pub kind: SeriesKind,
    pub points: Vec<HistoryPoint>,
}

/// Aggregates over the last `n` points of a series (see
/// [`History::window`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStats {
    /// Points actually covered (≤ the requested window).
    pub samples: usize,
    /// Minimum headline value in the window.
    pub min: u64,
    /// Maximum headline value in the window.
    pub max: u64,
    /// Sum of headline values in the window.
    pub sum: u64,
    /// Wall-clock span the window covers, microseconds.
    pub span_us: u64,
    /// `sum` per second over the span — for counter series, the windowed
    /// event rate. Zero when the span is empty.
    pub rate_per_sec: f64,
}

/// What one tick observed — handed to the [`Health`] rules so history
/// recording and watchdog evaluation walk the snapshot once.
#[derive(Clone, Debug, Default)]
pub struct TickObservation {
    /// Tick ordinal (1 = first recorded tick).
    pub tick: u64,
    /// Microseconds since the history started.
    pub at_us: u64,
    /// Gauge levels by rendered key.
    pub gauges: BTreeMap<String, u64>,
    /// Counter deltas by rendered key.
    pub counter_deltas: BTreeMap<String, u64>,
    /// Interval histogram summaries by name (registry histograms only).
    pub intervals: BTreeMap<String, HistogramSummary>,
}

struct SeriesState {
    kind: SeriesKind,
    /// Last cumulative counter value (delta basis).
    prev: u64,
    points: VecDeque<HistoryPoint>,
}

#[derive(Default)]
struct HistoryInner {
    ticks: u64,
    series: BTreeMap<String, SeriesState>,
    /// Previous raw bucket snapshot per histogram (interval basis).
    prev_hists: BTreeMap<String, HistogramSnapshot>,
}

/// The per-metric ring buffers (see the module docs). Shared between the
/// sampler thread (writer) and query/wire consumers (readers) behind one
/// `RwLock` — never on a request hot path.
pub struct History {
    capacity: usize,
    start: Instant,
    inner: RwLock<HistoryInner>,
}

/// Renders a sample's ring key: the metric name with labels inlined.
pub fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

impl History {
    pub fn new(capacity: usize) -> History {
        History {
            capacity: capacity.max(2),
            start: Instant::now(),
            inner: RwLock::new(HistoryInner::default()),
        }
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.inner.read().expect("history poisoned").ticks
    }

    /// Ring capacity (points per metric).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one tick: counter deltas and gauge levels from `snap`,
    /// interval quantiles from `raw_hists` (the registry's raw bucket
    /// snapshots — histogram *summaries* in `snap` are ignored, the raw
    /// buckets carry strictly more information). Returns the tick's
    /// observation for watchdog evaluation.
    pub fn record_tick(
        &self,
        snap: &MetricsSnapshot,
        raw_hists: &[(String, HistogramSnapshot)],
    ) -> TickObservation {
        let at_us = self.start.elapsed().as_micros() as u64;
        let mut inner = self.inner.write().expect("history poisoned");
        inner.ticks += 1;
        let mut obs = TickObservation { tick: inner.ticks, at_us, ..TickObservation::default() };
        let capacity = self.capacity;
        for s in &snap.samples {
            let key = series_key(&s.name, &s.labels);
            match s.value {
                SampleValue::Counter(v) => {
                    let state = inner.series.entry(key.clone()).or_insert_with(|| SeriesState {
                        kind: SeriesKind::Counter,
                        prev: 0,
                        points: VecDeque::with_capacity(capacity.min(64)),
                    });
                    let delta = v.saturating_sub(state.prev);
                    state.prev = v;
                    push_point(
                        state,
                        capacity,
                        HistoryPoint { at_us, value: PointValue::Delta(delta) },
                    );
                    obs.counter_deltas.insert(key, delta);
                }
                SampleValue::Gauge(v) => {
                    let state = inner.series.entry(key.clone()).or_insert_with(|| SeriesState {
                        kind: SeriesKind::Gauge,
                        prev: 0,
                        points: VecDeque::with_capacity(capacity.min(64)),
                    });
                    push_point(
                        state,
                        capacity,
                        HistoryPoint { at_us, value: PointValue::Level(v) },
                    );
                    obs.gauges.insert(key, v);
                }
                SampleValue::Histogram(_) => {}
            }
        }
        for (name, raw) in raw_hists {
            let prev = inner.prev_hists.get(name).copied().unwrap_or_default();
            let interval = raw.since(&prev);
            inner.prev_hists.insert(name.clone(), *raw);
            let summary = interval.summary();
            let state = inner.series.entry(name.clone()).or_insert_with(|| SeriesState {
                kind: SeriesKind::Histogram,
                prev: 0,
                points: VecDeque::with_capacity(capacity.min(64)),
            });
            push_point(
                state,
                capacity,
                HistoryPoint {
                    at_us,
                    value: PointValue::Quantiles {
                        count: summary.count,
                        p50: summary.p50,
                        p90: summary.p90,
                        p99: summary.p99,
                    },
                },
            );
            obs.intervals.insert(name.clone(), summary);
        }
        obs
    }

    /// Every tracked series key, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().expect("history poisoned").series.keys().cloned().collect()
    }

    /// One series' points (oldest first), or `None` if never recorded.
    pub fn series(&self, key: &str) -> Option<SeriesData> {
        let inner = self.inner.read().expect("history poisoned");
        inner.series.get(key).map(|s| SeriesData {
            name: key.to_string(),
            kind: s.kind,
            points: s.points.iter().copied().collect(),
        })
    }

    /// Every series, sorted by key (the wire history frame's payload).
    pub fn all_series(&self) -> Vec<SeriesData> {
        let inner = self.inner.read().expect("history poisoned");
        inner
            .series
            .iter()
            .map(|(name, s)| SeriesData {
                name: name.clone(),
                kind: s.kind,
                points: s.points.iter().copied().collect(),
            })
            .collect()
    }

    /// Windowed aggregates over the last `window` points of `key`:
    /// min/max/sum of the headline values and the rate per second over
    /// the covered wall-clock span. `None` for an unknown or empty series.
    pub fn window(&self, key: &str, window: usize) -> Option<WindowStats> {
        let inner = self.inner.read().expect("history poisoned");
        let state = inner.series.get(key)?;
        if state.points.is_empty() {
            return None;
        }
        let n = window.max(1).min(state.points.len());
        let pts: Vec<HistoryPoint> =
            state.points.iter().skip(state.points.len() - n).copied().collect();
        let (mut min, mut max, mut sum) = (u64::MAX, 0u64, 0u64);
        for p in &pts {
            let v = p.headline();
            min = min.min(v);
            max = max.max(v);
            sum = sum.saturating_add(v);
        }
        // The first windowed point's delta accrued over the tick that
        // *ended* at its timestamp; approximate that leading interval by
        // the window's mean tick spacing when a predecessor is missing.
        let span_us = if pts.len() >= 2 {
            let observed = pts[pts.len() - 1].at_us.saturating_sub(pts[0].at_us);
            observed + observed / (pts.len() as u64 - 1).max(1)
        } else {
            pts[0].at_us
        };
        let rate_per_sec = if span_us > 0 { sum as f64 / (span_us as f64 / 1e6) } else { 0.0 };
        Some(WindowStats { samples: n, min, max, sum, span_us, rate_per_sec })
    }
}

fn push_point(state: &mut SeriesState, capacity: usize, point: HistoryPoint) {
    if state.points.len() == capacity {
        state.points.pop_front();
    }
    state.points.push_back(point);
}

/// Sampler configuration (see [`Sampler::start`]).
pub struct SamplerConfig {
    /// Tick interval (floored at 1 ms).
    pub interval: Duration,
    /// Ring capacity per metric.
    pub capacity: usize,
    /// Watchdog rules evaluated after every tick.
    pub rules: Vec<HealthRule>,
    /// Quiet ticks before a fired alert releases its forced always-on
    /// trace sampling (see [`Health`]).
    pub cooldown_ticks: u32,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            interval: DEFAULT_SAMPLE_INTERVAL,
            capacity: DEFAULT_HISTORY_CAPACITY,
            rules: Vec::new(),
            cooldown_ticks: DEFAULT_COOLDOWN_TICKS,
        }
    }
}

struct SamplerCore {
    history: Arc<History>,
    health: Arc<Health>,
    registry: Arc<Registry>,
    source: Box<dyn Fn() -> MetricsSnapshot + Send + Sync>,
    /// Serializes the thread's periodic tick against `tick_now` callers.
    tick_gate: Mutex<()>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl SamplerCore {
    fn tick(&self) {
        let _gate = self.tick_gate.lock().expect("sampler tick gate poisoned");
        let snap = (self.source)();
        let raw = self.registry.histograms_raw();
        let obs = self.history.record_tick(&snap, &raw);
        self.health.evaluate(&obs);
    }
}

/// The background history/watchdog thread (see the module docs). Stops
/// on [`Sampler::stop`]; dropping the sampler stops and joins it.
pub struct Sampler {
    core: Arc<SamplerCore>,
    interval: Duration,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Sampler {
    /// Starts the sampler thread: every `config.interval` it pulls one
    /// snapshot from `source`, diffs `registry`'s raw histograms for
    /// interval percentiles, records the tick into a fresh [`History`],
    /// and evaluates `config.rules` through a fresh [`Health`] (whose
    /// alert counters live in `registry`, so the *next* tick's snapshot
    /// covers the alerts themselves).
    pub fn start(
        registry: Arc<Registry>,
        source: impl Fn() -> MetricsSnapshot + Send + Sync + 'static,
        config: SamplerConfig,
    ) -> Sampler {
        let interval = config.interval.max(Duration::from_millis(1));
        let core = Arc::new(SamplerCore {
            history: Arc::new(History::new(config.capacity)),
            health: Arc::new(Health::new(
                Arc::clone(&registry),
                config.rules,
                config.cooldown_ticks,
            )),
            registry,
            source: Box::new(source),
            tick_gate: Mutex::new(()),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_core = Arc::clone(&core);
        let thread = std::thread::Builder::new()
            .name("xpv-obs-sampler".to_string())
            .spawn(move || loop {
                let stopped = {
                    let guard = thread_core.stop.lock().expect("sampler stop flag poisoned");
                    let (guard, _) = thread_core
                        .wake
                        .wait_timeout(guard, interval)
                        .expect("sampler stop flag poisoned");
                    *guard
                };
                if stopped {
                    return;
                }
                thread_core.tick();
            })
            .expect("spawn sampler thread");
        Sampler { core, interval, thread: Mutex::new(Some(thread)) }
    }

    /// The recorded history.
    pub fn history(&self) -> &Arc<History> {
        &self.core.history
    }

    /// The watchdog state (rules, alerts, trace forcing).
    pub fn health(&self) -> &Arc<Health> {
        &self.core.health
    }

    /// The configured tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Runs one tick synchronously on the calling thread (tests and
    /// dump-on-demand paths that cannot wait out an interval).
    pub fn tick_now(&self) {
        self.core.tick();
    }

    /// Signals the thread to exit and joins it (idempotent; also run on
    /// drop). After `stop` returns no further tick will record.
    pub fn stop(&self) {
        {
            let mut stopped = self.core.stop.lock().expect("sampler stop flag poisoned");
            *stopped = true;
        }
        self.core.wake.notify_all();
        if let Some(handle) = self.thread.lock().expect("sampler thread slot poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("interval", &self.interval)
            .field("ticks", &self.core.history.ticks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn counter_snap(name: &str, v: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter(name, v);
        snap
    }

    #[test]
    fn counters_record_deltas_and_gauges_record_levels() {
        let h = History::new(8);
        let mut snap = counter_snap("c", 10);
        snap.push_gauge("g", 3);
        h.record_tick(&snap, &[]);
        let mut snap = counter_snap("c", 25);
        snap.push_gauge("g", 1);
        let obs = h.record_tick(&snap, &[]);
        assert_eq!(obs.counter_deltas["c"], 15);
        assert_eq!(obs.gauges["g"], 1);
        let c = h.series("c").expect("series exists");
        assert_eq!(c.kind, SeriesKind::Counter);
        assert_eq!(
            c.points.iter().map(|p| p.headline()).collect::<Vec<_>>(),
            vec![10, 15],
            "first tick delta is the full value (prev = 0)"
        );
        let g = h.series("g").expect("series exists");
        assert_eq!(g.points.last().expect("points").value, PointValue::Level(1));
    }

    #[test]
    fn labeled_counters_key_their_own_series() {
        let h = History::new(8);
        let mut snap = MetricsSnapshot::new();
        snap.push_counter_labeled("t", ("tenant", "a"), 5);
        snap.push_counter_labeled("t", ("tenant", "b"), 7);
        h.record_tick(&snap, &[]);
        assert_eq!(h.names(), vec!["t{tenant=\"a\"}", "t{tenant=\"b\"}"]);
    }

    #[test]
    fn rings_drop_oldest_beyond_capacity() {
        let h = History::new(4);
        for i in 0..10u64 {
            h.record_tick(&counter_snap("c", i * 2), &[]);
        }
        let s = h.series("c").expect("series exists");
        assert_eq!(s.points.len(), 4, "ring capped at capacity");
        assert_eq!(
            s.points.iter().map(|p| p.headline()).collect::<Vec<_>>(),
            vec![2, 2, 2, 2],
            "oldest points dropped, deltas intact"
        );
        assert_eq!(h.ticks(), 10);
    }

    #[test]
    fn histogram_ticks_record_interval_quantiles_not_cumulative() {
        let h = History::new(8);
        let hist = Histogram::new();
        for _ in 0..100 {
            hist.record(10);
        }
        h.record_tick(&MetricsSnapshot::new(), &[("lat".to_string(), hist.snapshot())]);
        // A slow tick after a long fast history: interval p99 must see it.
        for _ in 0..5 {
            hist.record(100_000);
        }
        let obs = h.record_tick(&MetricsSnapshot::new(), &[("lat".to_string(), hist.snapshot())]);
        let interval = obs.intervals["lat"];
        assert_eq!(interval.count, 5, "only the tick's observations");
        assert!(
            interval.p50 >= 100_000 / 2,
            "interval p50 {} reflects the slow tick, not the fast history",
            interval.p50
        );
        let s = h.series("lat").expect("series exists");
        assert_eq!(s.kind, SeriesKind::Histogram);
        match s.points[1].value {
            PointValue::Quantiles { count, .. } => assert_eq!(count, 5),
            other => panic!("wrong point kind: {other:?}"),
        }
    }

    #[test]
    fn window_stats_cover_min_max_and_rate() {
        let h = History::new(16);
        for v in [0u64, 100, 250, 450] {
            h.record_tick(&counter_snap("c", v), &[]);
        }
        let w = h.window("c", 3).expect("window");
        assert_eq!(w.samples, 3);
        assert_eq!((w.min, w.max), (100, 200));
        assert_eq!(w.sum, 450);
        assert!(w.rate_per_sec > 0.0, "ticks are microseconds apart, rate is huge");
        assert!(h.window("missing", 3).is_none());
        // Window larger than the ring clamps.
        assert_eq!(h.window("c", 99).expect("window").samples, 4);
    }

    #[test]
    fn sampler_thread_ticks_and_stops() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("work");
        let reg_for_source = Arc::clone(&registry);
        let sampler = Sampler::start(
            Arc::clone(&registry),
            move || reg_for_source.snapshot(),
            SamplerConfig { interval: Duration::from_millis(5), ..SamplerConfig::default() },
        );
        counter.add(42);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.history().ticks() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sampler.history().ticks() >= 3, "sampler thread ticked");
        let w = sampler.history().window("work", 64).expect("counter tracked");
        assert_eq!(w.sum, 42, "deltas sum to the counter total");
        sampler.stop();
        let after = sampler.history().ticks();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sampler.history().ticks(), after, "no ticks after stop");
        sampler.stop(); // idempotent
    }

    #[test]
    fn tick_now_is_synchronous() {
        let registry = Arc::new(Registry::new());
        registry.counter("c").add(7);
        let reg_for_source = Arc::clone(&registry);
        let sampler = Sampler::start(
            Arc::clone(&registry),
            move || reg_for_source.snapshot(),
            SamplerConfig { interval: Duration::from_secs(3600), ..SamplerConfig::default() },
        );
        sampler.tick_now();
        sampler.tick_now();
        assert_eq!(sampler.history().ticks(), 2);
        assert_eq!(sampler.history().window("c", 8).expect("tracked").sum, 7);
    }
}
