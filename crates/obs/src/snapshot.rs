//! [`MetricsSnapshot`]: the frozen, renderable form of a metric set.
//!
//! A snapshot is a flat list of named [`Sample`]s — counters, gauges, and
//! six-number histogram summaries, optionally labeled (`tenant="acme"`).
//! It is the **one render path** for every counter in the workspace: the
//! registry snapshots into it, the engine's legacy stats structs visit
//! into it, the `StatsResp` v2 wire frame is its field-for-field encoding,
//! and [`MetricsSnapshot::to_text`] is the Prometheus-style text format
//! `xpv stats` prints.

use std::fmt::Write as _;

/// The six-number summary a histogram exposes (see
/// [`HistogramSnapshot::summary`](crate::HistogramSnapshot::summary)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// A sample's value: which instrument kind produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSummary),
}

/// One named metric sample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    pub name: String,
    /// `(key, value)` label pairs (usually empty or a single `tenant`).
    pub labels: Vec<(String, String)>,
    pub value: SampleValue,
}

/// A frozen set of metric samples (see the module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        self.samples.push(Sample {
            name: name.into(),
            labels: Vec::new(),
            value: SampleValue::Counter(value),
        });
    }

    /// A labeled counter sample (`name{key="value"} v`).
    pub fn push_counter_labeled(
        &mut self,
        name: impl Into<String>,
        label: (&str, &str),
        value: u64,
    ) {
        self.samples.push(Sample {
            name: name.into(),
            labels: vec![(label.0.to_string(), label.1.to_string())],
            value: SampleValue::Counter(value),
        });
    }

    pub fn push_gauge(&mut self, name: impl Into<String>, value: u64) {
        self.samples.push(Sample {
            name: name.into(),
            labels: Vec::new(),
            value: SampleValue::Gauge(value),
        });
    }

    pub fn push_histogram(&mut self, name: impl Into<String>, summary: HistogramSummary) {
        self.samples.push(Sample {
            name: name.into(),
            labels: Vec::new(),
            value: SampleValue::Histogram(summary),
        });
    }

    /// Sorts by `(name, labels)` — deterministic output independent of
    /// insertion order.
    pub fn sort(&mut self) {
        self.samples.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
    }

    /// The first sample named `name` (any labels).
    pub fn get(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// The Prometheus-style text exposition: one `name{labels} value`
    /// line per counter/gauge, and `_count`/`_sum`/`_max`/`_p50`/`_p90`/
    /// `_p99` lines per histogram.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    write_line(&mut out, &s.name, "", &s.labels, v);
                }
                SampleValue::Histogram(h) => {
                    write_line(&mut out, &s.name, "_count", &s.labels, h.count);
                    write_line(&mut out, &s.name, "_sum", &s.labels, h.sum);
                    write_line(&mut out, &s.name, "_max", &s.labels, h.max);
                    write_line(&mut out, &s.name, "_p50", &s.labels, h.p50);
                    write_line(&mut out, &s.name, "_p90", &s.labels, h.p90);
                    write_line(&mut out, &s.name, "_p99", &s.labels, h.p99);
                }
            }
        }
        out
    }
}

fn write_line(out: &mut String, name: &str, suffix: &str, labels: &[(String, String)], v: u64) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(val));
        }
        out.push('}');
    }
    let _ = writeln!(out, " {v}");
}

/// Escapes a label value per the Prometheus text rules (`\`, `"`, and
/// newlines) — tenant ids are arbitrary client strings.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a `visit`-style counter enumeration as one `name=value` line —
/// the shared `Display` body for the legacy stats structs
/// (`OracleStats`, `CacheStats`, `TenantStats`, `MaintainStats`): their
/// `Display` output and their registry exposition walk the **same**
/// enumeration, so the two can no longer drift.
pub fn write_kv_line(
    f: &mut std::fmt::Formatter<'_>,
    visit: impl FnOnce(&mut dyn FnMut(&'static str, u64)),
) -> std::fmt::Result {
    let mut line = String::new();
    visit(&mut |name, v| {
        if !line.is_empty() {
            line.push(' ');
        }
        let _ = write!(line, "{name}={v}");
    });
    f.write_str(&line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_exposition_renders_all_kinds() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("xpv_cache_queries", 12);
        snap.push_counter_labeled("xpv_tenant_queries", ("tenant", "acme"), 7);
        snap.push_gauge("xpv_server_connections", 3);
        snap.push_histogram(
            "xpv_phase_eval_us",
            HistogramSummary { count: 2, sum: 30, max: 20, p50: 15, p90: 20, p99: 20 },
        );
        let text = snap.to_text();
        assert!(text.contains("xpv_cache_queries 12\n"), "got: {text}");
        assert!(text.contains("xpv_tenant_queries{tenant=\"acme\"} 7\n"), "got: {text}");
        assert!(text.contains("xpv_server_connections 3\n"), "got: {text}");
        assert!(text.contains("xpv_phase_eval_us_p99 20\n"), "got: {text}");
        assert!(text.contains("xpv_phase_eval_us_count 2\n"), "got: {text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter_labeled("m", ("tenant", "a\"b\\c\nd"), 1);
        assert_eq!(snap.to_text(), "m{tenant=\"a\\\"b\\\\c\\nd\"} 1\n");
    }

    #[test]
    fn sort_is_deterministic() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("b", 1);
        snap.push_counter_labeled("a", ("tenant", "z"), 2);
        snap.push_counter_labeled("a", ("tenant", "k"), 3);
        snap.sort();
        assert_eq!(snap.samples[0].name, "a");
        assert_eq!(snap.samples[0].labels[0].1, "k");
        assert_eq!(snap.samples[2].name, "b");
    }
}
