//! Sampled request-lifecycle tracing: [`Span`]s, phase timelines, and
//! per-thread event rings.
//!
//! A [`Span`] follows one request (or one update batch) across tasks and
//! threads, accumulating a monotonic-clock phase timeline — admission
//! wait → plan/route → eval → encode → flush for a served query batch,
//! apply → freeze → coalesce → scan → patch for maintenance. Finished
//! spans land as [`TraceEvent`]s in the **recording thread's** ring
//! buffer; [`drain_trace_events`] steals every thread's ring in one call.
//!
//! ## Sampling
//!
//! Whether a span records at all is decided **once, at
//! [`Span::begin`]**, by the global knob [`set_trace_sampling`]:
//! `0` disables tracing, `1` traces every request, `n` traces one in `n`
//! (per-thread round-robin, so a uniform workload is sampled uniformly;
//! the default is one in [`DEFAULT_TRACE_SAMPLING`]). A disabled span is
//! a `None` — every subsequent [`Span::mark`] is one branch, and
//! `Span::begin` itself is one relaxed atomic load plus a branch when
//! tracing is off. The measured costs are in the crate docs' overhead
//! budget.
//!
//! Rings are bounded ([`RING_CAPACITY`] events per thread): a slow
//! drainer loses the **oldest** events, never blocks a recorder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default sampling rate: one traced request per 64.
pub const DEFAULT_TRACE_SAMPLING: u32 = 64;

/// Events kept per thread ring before the oldest is dropped.
pub const RING_CAPACITY: usize = 256;

static SAMPLING: AtomicU32 = AtomicU32::new(DEFAULT_TRACE_SAMPLING);

/// Sets the global trace sampling: `0` = off, `1` = every request,
/// `n` = one in `n`. Takes effect for spans begun after the call.
pub fn set_trace_sampling(n: u32) {
    SAMPLING.store(n, Ordering::Relaxed);
}

/// The current sampling knob (see [`set_trace_sampling`]).
pub fn trace_sampling() -> u32 {
    SAMPLING.load(Ordering::Relaxed)
}

/// A lifecycle phase in a span's timeline. One enum spans both the
/// serving pipeline and the maintenance pipeline — a trace consumer
/// matches on the event's `kind` to know which family to expect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Waiting for admission (credit window / executor queue).
    Admission,
    /// Routing: plan-memo lookup or a planner call.
    Plan,
    /// Evaluating the routed queries.
    Eval,
    /// Encoding the response frame.
    Encode,
    /// Writing the response frame to the socket.
    Flush,
    /// Maintenance: applying the edit batch to the tree.
    Apply,
    /// Maintenance: freezing the post-batch flat snapshot.
    Freeze,
    /// Maintenance: diffing spines and merging regions.
    Coalesce,
    /// Maintenance: scanning merged regions.
    Scan,
    /// Maintenance: patching answer sets.
    Patch,
}

impl Phase {
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::Plan => "plan",
            Phase::Eval => "eval",
            Phase::Encode => "encode",
            Phase::Flush => "flush",
            Phase::Apply => "apply",
            Phase::Freeze => "freeze",
            Phase::Coalesce => "coalesce",
            Phase::Scan => "scan",
            Phase::Patch => "patch",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finished span, as drained from a ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What kind of request this span followed (e.g. `serve.request`,
    /// `cache.batch`, `cache.update`).
    pub kind: &'static str,
    /// Wall time from `begin` to `finish`, microseconds.
    pub total_us: u64,
    /// `(phase, duration_us)` in the order the phases were marked.
    pub phases: Vec<(Phase, u64)>,
}

struct SpanInner {
    kind: &'static str,
    start: Instant,
    last: Instant,
    phases: Vec<(Phase, u64)>,
}

/// A request-lifecycle span (see the module docs). Cheap to move across
/// tasks and threads; records into the **finishing** thread's ring on
/// drop.
#[must_use = "a span records on drop; an unused span traces nothing"]
#[derive(Default)]
pub struct Span(Option<Box<SpanInner>>);

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Span({}, {} phases)", inner.kind, inner.phases.len()),
            None => f.write_str("Span(disabled)"),
        }
    }
}

impl Span {
    /// Begins a span if the sampling knob elects this request; otherwise
    /// returns a disabled span whose every operation is one branch.
    #[inline]
    pub fn begin(kind: &'static str) -> Span {
        let n = SAMPLING.load(Ordering::Relaxed);
        if n == 0 {
            return Span(None);
        }
        if n > 1 && !sampled_tick(n) {
            return Span(None);
        }
        Span::forced(kind)
    }

    /// A span that records regardless of the sampling knob (tests, and
    /// call sites that already decided to trace).
    pub fn forced(kind: &'static str) -> Span {
        let now = Instant::now();
        Span(Some(Box::new(SpanInner {
            kind,
            start: now,
            last: now,
            phases: Vec::with_capacity(6),
        })))
    }

    /// The permanently-disabled span (control frames, default fields).
    pub fn disabled() -> Span {
        Span(None)
    }

    /// Whether this span records (callers can skip preparing phase data
    /// for disabled spans).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Ends `phase` now: its duration is the time since the previous
    /// mark (or since `begin` for the first).
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        if let Some(inner) = self.0.as_deref_mut() {
            let now = Instant::now();
            let us = now.duration_since(inner.last).as_micros() as u64;
            inner.phases.push((phase, us));
            inner.last = now;
        }
    }

    /// Records an externally-timed phase (maintenance phases are timed by
    /// the maintainer itself; the span carries the numbers, it does not
    /// re-measure them). Does not advance the mark clock.
    #[inline]
    pub fn mark_us(&mut self, phase: Phase, us: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.phases.push((phase, us));
        }
    }

    /// Finishes the span, pushing its event into this thread's ring.
    /// Dropping an enabled span does the same; `finish` just names the
    /// intent at the call site.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.0.take() {
            let event = TraceEvent {
                kind: inner.kind,
                total_us: inner.start.elapsed().as_micros() as u64,
                phases: inner.phases,
            };
            record_event(event);
        }
    }
}

/// Per-thread round-robin sampling: true once every `n` calls.
fn sampled_tick(n: u32) -> bool {
    use std::cell::Cell;
    thread_local! {
        static TICK: Cell<u32> = const { Cell::new(0) };
    }
    TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v % n == 0
    })
}

/// One thread's bounded event ring. The mutex is effectively
/// uncontended: only the owning thread pushes, and a drainer visits
/// briefly.
#[derive(Default)]
struct TraceRing {
    events: Mutex<VecDeque<TraceEvent>>,
}

fn ring_registry() -> &'static Mutex<Vec<Arc<TraceRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<TraceRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_event(event: TraceEvent) {
    thread_local! {
        static RING: Arc<TraceRing> = {
            let ring = Arc::new(TraceRing::default());
            ring_registry().lock().expect("ring registry poisoned").push(Arc::clone(&ring));
            ring
        };
    }
    // A recording thread that outlives TLS destruction would re-register
    // on every event; `try_with` just drops the event instead.
    let _ = RING.try_with(|ring| {
        let mut events = ring.events.lock().expect("trace ring poisoned");
        if events.len() == RING_CAPACITY {
            events.pop_front();
        }
        events.push_back(event);
    });
}

/// Steals every thread's buffered trace events (oldest first per thread;
/// thread interleaving is not ordered). The registry holds rings
/// **strongly**, so a thread that finished spans and exited loses
/// nothing; its now-orphaned ring is dropped after this drain empties it.
pub fn drain_trace_events() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let mut rings = ring_registry().lock().expect("ring registry poisoned");
    rings.retain(|ring| {
        out.extend(ring.events.lock().expect("trace ring poisoned").drain(..));
        // Strong count 1 ⇒ only the registry owns it: the thread is gone.
        Arc::strong_count(ring) > 1
    });
    out
}

/// Rings currently registered: live recording threads plus dead threads
/// whose rings a drain has not yet pruned. A leak diagnostic — under
/// thread churn with periodic drains this must stay bounded by the live
/// thread count, not grow with every thread ever spawned.
pub fn trace_ring_count() -> usize {
    ring_registry().lock().expect("ring registry poisoned").len()
}

#[cfg(test)]
pub(crate) mod tests_support {
    use std::sync::Mutex;

    /// Serializes the tests (across this crate's modules) that touch the
    /// global sampling knob and the global rings (cargo runs tests in
    /// parallel within the crate).
    pub(crate) fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("trace test lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::trace_lock;
    use super::*;

    #[test]
    fn span_records_phases_in_mark_order() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        let mut span = Span::forced("test.request");
        span.mark(Phase::Admission);
        span.mark(Phase::Plan);
        span.mark_us(Phase::Eval, 17);
        span.finish();
        let events = drain_trace_events();
        let e = events.iter().find(|e| e.kind == "test.request").expect("event recorded");
        let order: Vec<Phase> = e.phases.iter().map(|p| p.0).collect();
        assert_eq!(order, vec![Phase::Admission, Phase::Plan, Phase::Eval]);
        assert_eq!(e.phases[2].1, 17);
    }

    #[test]
    fn sampling_zero_disables_and_one_traces_everything() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        set_trace_sampling(0);
        assert!(!Span::begin("test.off").is_enabled());
        set_trace_sampling(1);
        let span = Span::begin("test.on");
        assert!(span.is_enabled());
        span.finish();
        set_trace_sampling(DEFAULT_TRACE_SAMPLING);
        let events = drain_trace_events();
        assert!(events.iter().any(|e| e.kind == "test.on"));
        assert!(!events.iter().any(|e| e.kind == "test.off"));
    }

    #[test]
    fn sampling_n_elects_one_in_n() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        set_trace_sampling(8);
        let enabled = (0..800).filter(|_| Span::begin("test.sampled").is_enabled()).count();
        set_trace_sampling(DEFAULT_TRACE_SAMPLING);
        let _ = drain_trace_events();
        assert_eq!(enabled, 100, "one in 8 of 800 on one thread");
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        for _ in 0..RING_CAPACITY + 10 {
            Span::forced("test.flood").finish();
        }
        let flood = drain_trace_events().into_iter().filter(|e| e.kind == "test.flood").count();
        assert_eq!(flood, RING_CAPACITY);
    }

    #[test]
    fn thread_churn_does_not_grow_the_ring_registry() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        let baseline = trace_ring_count();
        // Many generations of short-lived instrumented threads, with a
        // drain between generations (as a live server's stats path does).
        for _ in 0..8 {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..4 {
                            Span::forced("test.churn").finish();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("no panic");
            }
            let drained =
                drain_trace_events().into_iter().filter(|e| e.kind == "test.churn").count();
            assert_eq!(drained, 32, "dead threads' events survive until the drain");
        }
        // 64 dead threads later: the registry pruned their rings instead
        // of accumulating a strong Arc per thread ever spawned.
        let _ = drain_trace_events();
        assert!(
            trace_ring_count() <= baseline + 1,
            "ring registry grew under thread churn: {} rings (baseline {baseline})",
            trace_ring_count()
        );
    }

    #[test]
    fn spans_cross_threads_and_land_in_the_finishing_ring() {
        let _guard = trace_lock();
        let _ = drain_trace_events();
        let mut span = Span::forced("test.cross");
        span.mark(Phase::Plan);
        let handle = std::thread::spawn(move || {
            span.mark(Phase::Flush);
            span.finish();
        });
        handle.join().expect("no panic");
        let events = drain_trace_events();
        let e = events.iter().find(|e| e.kind == "test.cross").expect("cross-thread event");
        assert_eq!(e.phases.len(), 2);
    }
}
